#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fu/functional_unit.hpp"
#include "isa/types.hpp"
#include "util/error.hpp"

namespace fpgafu::rtm {

/// Functional unit table (paper Fig. 4): maps instruction function codes to
/// attached functional units.  "External table module definitions alleviate
/// customisation" — attaching a unit is the only configuration step.
///
/// Runtime hot-swap support (the partial-reconfiguration model the
/// algorithm-on-demand manager drives, cf. the Agile AOD co-processor):
///
///  * every code has a *lifecycle state*: resident (dispatchable), draining
///    (attached so in-flight writes still retire through the arbiter, but
///    the dispatcher refuses new instructions), or declared-unavailable
///    (no unit attached, but the code is *known* — evicted or still
///    loading).  Instructions for a draining or declared code yield typed
///    kUnitUnavailable error responses, distinct from kUnknownFunction, so
///    hosts can retry after the swap instead of failing the program;
///  * `find`/`index_of` are O(1) via a code-indexed lookup table kept
///    coherent across attach/detach — the decode hot path must not pay a
///    linear scan over a table that now churns at runtime.
class FunctionalUnitTable {
 public:
  FunctionalUnitTable() {
    index_.fill(kNoSlot);
    unavailable_.fill(false);
  }

  /// Attach a unit under a function code.  Returns the unit's table index
  /// (used as the lock-owner id).  Codes must be unique and not fc::kRtm.
  /// Detached slots are reused, preserving the indices of other units.
  /// Clears any declared-unavailable marker for the code (the swap
  /// completed; the unit is dispatchable again).
  std::uint32_t attach(isa::FunctionCode code, fu::FunctionalUnit& unit) {
    check(code != isa::fc::kRtm, "fc::kRtm is reserved for the RTM itself");
    check(index_[code] == kNoSlot, "function code already attached");
    unavailable_[code] = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].unit == nullptr) {
        entries_[i] = {code, &unit, false};
        index_[code] = static_cast<std::int16_t>(i);
        return static_cast<std::uint32_t>(i);
      }
    }
    entries_.push_back({code, &unit, false});
    index_[code] = static_cast<std::int16_t>(entries_.size() - 1);
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  /// Detach the unit under `code` — the model's equivalent of partial
  /// reconfiguration (cf. Wirthlin & Hutchings' dynamic instruction set,
  /// discussed in the paper's related work): subsequent instructions with
  /// this code yield error responses until a new unit is attached
  /// (kUnknownFunction, or kUnitUnavailable once declared).  The caller
  /// must only detach an idle unit with no writes in flight (Rtm::detach
  /// enforces this, including the stalled-pre-dispatch case).
  void detach(isa::FunctionCode code) {
    const std::int16_t slot = index_[code];
    check(slot != kNoSlot, "detach: function code not attached");
    entries_[static_cast<std::size_t>(slot)].unit = nullptr;
    entries_[static_cast<std::size_t>(slot)].draining = false;
    index_[code] = kNoSlot;
  }

  /// Unit registered under `code` and dispatchable, or nullptr.  This is
  /// the *dispatcher's* view: a draining unit is invisible here (new
  /// instructions must not reach it) even though its slot stays active so
  /// the write arbiter retires its in-flight completions.
  fu::FunctionalUnit* find(isa::FunctionCode code) const {
    const std::int16_t slot = index_[code];
    if (slot == kNoSlot || entries_[static_cast<std::size_t>(slot)].draining) {
      return nullptr;
    }
    return entries_[static_cast<std::size_t>(slot)].unit;
  }

  /// Table index for `code`; requires the code to be attached.  Draining
  /// entries are still found — this is the *management* view (lock-owner
  /// ids, Rtm::detach) rather than the dispatch view.
  std::uint32_t index_of(isa::FunctionCode code) const {
    const std::int16_t slot = index_[code];
    check(slot != kNoSlot, "function code not attached");
    return static_cast<std::uint32_t>(slot);
  }

  /// True when the code is attached (resident or draining).
  bool attached(isa::FunctionCode code) const {
    return index_[code] != kNoSlot;
  }

  // -- Hot-swap lifecycle ----------------------------------------------------
  /// Mark an attached code as draining: find() stops returning it, so new
  /// instructions become kUnitUnavailable errors, while the slot stays
  /// active for the arbiter to retire in-flight writes.
  void set_draining(isa::FunctionCode code, bool draining) {
    const std::int16_t slot = index_[code];
    check(slot != kNoSlot, "set_draining: function code not attached");
    entries_[static_cast<std::size_t>(slot)].draining = draining;
  }

  /// Declare a *detached* code as known-but-unavailable (registered with a
  /// hot-swap manager, currently evicted or loading): instructions for it
  /// yield kUnitUnavailable instead of kUnknownFunction.  Cleared by
  /// attach().
  void mark_unavailable(isa::FunctionCode code) {
    check(index_[code] == kNoSlot,
          "mark_unavailable: code is attached (use set_draining)");
    unavailable_[code] = true;
  }
  void clear_unavailable(isa::FunctionCode code) {
    unavailable_[code] = false;
  }

  /// True when instructions for `code` should yield kUnitUnavailable (the
  /// code is draining, loading or evicted) rather than kUnknownFunction.
  bool unavailable(isa::FunctionCode code) const {
    const std::int16_t slot = index_[code];
    if (slot != kNoSlot) {
      return entries_[static_cast<std::size_t>(slot)].draining;
    }
    return unavailable_[code];
  }

  /// Number of table slots (detached slots included; test with
  /// slot_active before calling unit()).
  std::size_t size() const { return entries_.size(); }
  bool slot_active(std::uint32_t index) const {
    return entries_.at(index).unit != nullptr;
  }
  bool slot_draining(std::uint32_t index) const {
    return entries_.at(index).draining;
  }
  fu::FunctionalUnit& unit(std::uint32_t index) const {
    check(entries_.at(index).unit != nullptr, "detached unit slot");
    return *entries_[index].unit;
  }
  isa::FunctionCode code(std::uint32_t index) const {
    return entries_.at(index).code;
  }

 private:
  static constexpr std::int16_t kNoSlot = -1;

  struct Entry {
    isa::FunctionCode code;
    fu::FunctionalUnit* unit;
    bool draining;
  };
  std::vector<Entry> entries_;
  /// code -> slot lookup (kNoSlot when detached), kept coherent across
  /// attach/detach so the decode hot path never scans.
  std::array<std::int16_t, 256> index_;
  /// Codes declared known-but-not-resident by a hot-swap manager.
  std::array<bool, 256> unavailable_;
};

}  // namespace fpgafu::rtm
