#pragma once

#include <cstdint>
#include <vector>

#include "fu/functional_unit.hpp"
#include "isa/types.hpp"
#include "util/error.hpp"

namespace fpgafu::rtm {

/// Functional unit table (paper Fig. 4): maps instruction function codes to
/// attached functional units.  "External table module definitions alleviate
/// customisation" — attaching a unit is the only configuration step.
class FunctionalUnitTable {
 public:
  /// Attach a unit under a function code.  Returns the unit's table index
  /// (used as the lock-owner id).  Codes must be unique and not fc::kRtm.
  /// Detached slots are reused, preserving the indices of other units.
  std::uint32_t attach(isa::FunctionCode code, fu::FunctionalUnit& unit) {
    check(code != isa::fc::kRtm, "fc::kRtm is reserved for the RTM itself");
    check(find(code) == nullptr, "function code already attached");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].unit == nullptr) {
        entries_[i] = {code, &unit};
        return static_cast<std::uint32_t>(i);
      }
    }
    entries_.push_back({code, &unit});
    return static_cast<std::uint32_t>(entries_.size() - 1);
  }

  /// Detach the unit under `code` — the model's equivalent of partial
  /// reconfiguration (cf. Wirthlin & Hutchings' dynamic instruction set,
  /// discussed in the paper's related work): subsequent instructions with
  /// this code yield unknown-function error responses until a new unit is
  /// attached.  The caller must only detach an idle unit with no writes in
  /// flight (System::detach enforces this).
  void detach(isa::FunctionCode code) {
    for (Entry& e : entries_) {
      if (e.unit != nullptr && e.code == code) {
        e.unit = nullptr;
        return;
      }
    }
    throw SimError("detach: function code not attached");
  }

  /// Unit registered under `code`, or nullptr.
  fu::FunctionalUnit* find(isa::FunctionCode code) const {
    for (const Entry& e : entries_) {
      if (e.unit != nullptr && e.code == code) {
        return e.unit;
      }
    }
    return nullptr;
  }

  /// Table index for `code`; requires the code to be attached.
  std::uint32_t index_of(isa::FunctionCode code) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].unit != nullptr && entries_[i].code == code) {
        return static_cast<std::uint32_t>(i);
      }
    }
    throw SimError("function code not attached");
  }

  /// Number of table slots (detached slots included; test with
  /// slot_active before calling unit()).
  std::size_t size() const { return entries_.size(); }
  bool slot_active(std::uint32_t index) const {
    return entries_.at(index).unit != nullptr;
  }
  fu::FunctionalUnit& unit(std::uint32_t index) const {
    check(entries_.at(index).unit != nullptr, "detached unit slot");
    return *entries_[index].unit;
  }
  isa::FunctionCode code(std::uint32_t index) const {
    return entries_.at(index).code;
  }

 private:
  struct Entry {
    isa::FunctionCode code;
    fu::FunctionalUnit* unit;
  };
  std::vector<Entry> entries_;
};

}  // namespace fpgafu::rtm
