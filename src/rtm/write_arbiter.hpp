#pragma once

#include <string>

#include "rtm/execution.hpp"
#include "rtm/fu_table.hpp"
#include "rtm/lock_manager.hpp"
#include "rtm/register_file.hpp"
#include "sim/component.hpp"
#include "sim/trace.hpp"

namespace fpgafu::rtm {

/// Write arbiter (paper Fig. 4): multiplexes functional-unit completions
/// onto the register file's write port, one acknowledgement per cycle, and
/// services the execution stage's dedicated high-priority write port.
///
/// It is the single owner of register-file writes and of lock releases,
/// which is what makes out-of-order completion safe: the dispatcher's WAW
/// stall guarantees one in-flight writer per register, and the arbiter
/// retires that writer and frees the register atomically (in one clock
/// edge).
///
/// `round_robin` selects the grant policy between the thesis' simple fixed
/// priority and a fairness-preserving rotating priority (a design-choice
/// ablation — see DESIGN.md §6).
class WriteArbiter : public sim::Component {
 public:
  WriteArbiter(sim::Simulator& sim, std::string name, RegisterFile& regs,
               FlagRegisterFile& flags, LockManager& locks,
               FunctionalUnitTable& table, Execution& execution,
               sim::Counters& counters, bool round_robin = false)
      : Component(sim, std::move(name)),
        regs_(&regs),
        flags_(&flags),
        locks_(&locks),
        table_(&table),
        execution_(&execution),
        counters_(&counters),
        h_hp_data_(counters.handle("arbiter.hp_data")),
        h_hp_flags_(counters.handle("arbiter.hp_flags")),
        h_unit_writes_(counters.handle("arbiter.unit_writes")),
        h_contention_(counters.handle("arbiter.contention")),
        round_robin_(round_robin) {}

  void eval() override {
    // Grant exactly one requesting unit; deassert all other acks.
    const std::size_t n = table_->size();
    grant_ = kNoGrant;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = round_robin_ ? (next_ + k) % n : k;
      if (!table_->slot_active(static_cast<std::uint32_t>(i))) {
        continue;
      }
      fu::FunctionalUnit& unit = table_->unit(static_cast<std::uint32_t>(i));
      if (grant_ == kNoGrant && unit.ports.data_ready.get()) {
        grant_ = i;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!table_->slot_active(static_cast<std::uint32_t>(i))) {
        continue;
      }
      table_->unit(static_cast<std::uint32_t>(i))
          .ports.data_acknowledge.set(i == grant_);
    }
  }

  void commit() override {
    // High-priority port: always granted.
    const HighPriorityWrite& w = execution_->hp.get();
    if (w.write_data) {
      regs_->write(w.dst_reg, w.data);
      locks_->unlock_data(w.dst_reg);
      counters_->bump(h_hp_data_);
    }
    if (w.write_flags) {
      flags_->write(w.dst_flag_reg, w.flags);
      locks_->unlock_flag(w.dst_flag_reg);
      counters_->bump(h_hp_flags_);
    }
    if (trace_ != nullptr && (w.write_data || w.write_flags)) {
      trace_->event(simulator().cycle(), "writeback.hp",
                    w.write_data ? w.dst_reg : w.dst_flag_reg);
    }
    // Granted functional-unit completion.
    if (grant_ != kNoGrant) {
      const fu::FuResult r =
          table_->unit(static_cast<std::uint32_t>(grant_)).ports.result.get();
      if (r.write_data) {
        regs_->write(r.dst_reg, r.data);
      }
      if (r.write_flags) {
        flags_->write(r.dst_flag_reg, r.flags);
      }
      // Destinations were locked at dispatch; the data register is
      // released on every transaction, the flag register only with the
      // record that carried the flags (see FuResult::unlock_flag_reg).
      locks_->unlock_data(r.dst_reg);
      if (r.unlock_flag_reg) {
        locks_->unlock_flag(r.dst_flag_reg);
      }
      counters_->bump(h_unit_writes_);
      if (trace_ != nullptr) {
        trace_->event(simulator().cycle(),
                      "writeback.unit" + std::to_string(grant_), r.dst_reg);
      }
      if (round_robin_) {
        next_ = (grant_ + 1) % table_->size();
      }
    }
    // Contention statistic: units left waiting this cycle.
    std::uint64_t waiting = 0;
    for (std::size_t i = 0; i < table_->size(); ++i) {
      if (table_->slot_active(static_cast<std::uint32_t>(i)) &&
          table_->unit(static_cast<std::uint32_t>(i))
              .ports.data_ready.get() &&
          i != grant_) {
        ++waiting;
      }
    }
    if (waiting > 0) {
      counters_->bump(h_contention_, waiting);
    }
    if (w.write_data || w.write_flags || grant_ != kNoGrant || waiting > 0) {
      // Retirements mutate regs/flags/locks/counters (and next_); waiting
      // units bump the contention counter every cycle — all clocked
      // activity the wire tracker cannot see.
      mark_active();
    }
  }

  void reset() override {
    grant_ = kNoGrant;
    next_ = 0;
  }

  /// Attach an event trace recording every retirement (`writeback.hp`,
  /// `writeback.unit<i>`) with the written register as the value.
  void set_trace(sim::EventTrace* trace) { trace_ = trace; }

 private:
  static constexpr std::size_t kNoGrant = ~std::size_t{0};

  RegisterFile* regs_;
  FlagRegisterFile* flags_;
  LockManager* locks_;
  FunctionalUnitTable* table_;
  Execution* execution_;
  sim::Counters* counters_;
  sim::Counters::Handle h_hp_data_;
  sim::Counters::Handle h_hp_flags_;
  sim::Counters::Handle h_unit_writes_;
  sim::Counters::Handle h_contention_;
  sim::EventTrace* trace_ = nullptr;
  bool round_robin_;
  std::size_t grant_ = kNoGrant;
  std::size_t next_ = 0;
};

}  // namespace fpgafu::rtm
