#pragma once

#include <cstdint>

#include "isa/instruction.hpp"
#include "msg/response.hpp"

namespace fpgafu::rtm {

/// Output of the decoder stage: "the current instruction is decoded into a
/// vector of signals that control the execution stage" (paper §III).
struct DecodedInst {
  isa::Instruction inst;
  isa::Word inline_data = 0;  ///< PUT's following stream word
  bool has_inline = false;
  std::uint16_t seq = 0;      ///< instruction sequence number (issue order)
  std::uint16_t burst = 0;    ///< sub-read index within a GETV expansion
  msg::ErrorCode error = msg::ErrorCode::kNone;  ///< decode-time fault

  bool operator==(const DecodedInst&) const = default;
};

/// A decoded instruction travelling from the dispatcher to the execution
/// stage, with register reads already performed ("reads from the register
/// file take place in the dispatcher stage").
struct ExecPacket {
  DecodedInst di;
  isa::Word src1_value = 0;
  isa::FlagWord src_flag_value = 0;

  bool operator==(const ExecPacket&) const = default;
};

}  // namespace fpgafu::rtm
