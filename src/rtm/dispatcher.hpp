#pragma once

#include <optional>
#include <string>

#include "rtm/decoded.hpp"
#include "rtm/fu_table.hpp"
#include "rtm/lock_manager.hpp"
#include "rtm/register_file.hpp"
#include "sim/component.hpp"
#include "sim/handshake.hpp"
#include "sim/trace.hpp"

namespace fpgafu::rtm {

/// Dispatcher pipeline stage (paper §III): "Reads from the register file
/// take place in the dispatcher stage, and instructions that initiate a
/// functional unit operation transmit data to the functional unit through a
/// register in this stage."
///
/// Responsibilities:
///  * hazard checks against the lock manager — sources must be unlocked
///    (RAW) and destinations unlocked (WAW, so each register has at most
///    one in-flight writer and out-of-order completion stays unambiguous);
///  * operand fetch (up to three reads: src1, src2, source flag register);
///  * routing — functional-unit instructions are dispatched to their unit
///    when the unit asserts `idle`; RTM-internal instructions travel on to
///    the execution stage; instructions with unknown function codes become
///    in-order error responses;
///  * locking destination registers of everything it launches.
class Dispatcher : public sim::Component {
 public:
  Dispatcher(sim::Simulator& sim, std::string name, RegisterFile& regs,
             FlagRegisterFile& flags, LockManager& locks,
             FunctionalUnitTable& table, sim::Counters& counters)
      : Component(sim, std::move(name)),
        to_exec(sim),
        regs_(&regs),
        flags_(&flags),
        locks_(&locks),
        table_(&table),
        counters_(&counters),
        h_dispatch_unit_(counters.handle("dispatch.unit")),
        h_dispatch_exec_(counters.handle("dispatch.exec")),
        h_stall_lock_(counters.handle("stall.lock")),
        h_stall_unit_busy_(counters.handle("stall.unit_busy")),
        h_stall_sync_(counters.handle("stall.sync")) {}

  sim::Handshake<DecodedInst>* in = nullptr;  ///< from the decoder
  sim::Handshake<ExecPacket> to_exec;         ///< to the execution stage

  void bind(sim::Handshake<DecodedInst>& decoder_out) { in = &decoder_out; }

  /// Attach an event trace: every dispatch is recorded as
  /// `dispatch.unit<i>` / `dispatch.exec` with the instruction's sequence
  /// number as the value.
  void set_trace(sim::EventTrace* trace) { trace_ = trace; }

  /// True while an instruction is pending pre-dispatch: offered on the
  /// input channel but not yet routed to a functional unit or the
  /// execution stage (hazard stall, busy unit, or exec backpressure).
  ///
  /// This is part of the SYNC/quiescence condition.  The paper's pipeline
  /// has no global stall — system idleness must be composed from per-stage
  /// state, and each stage must answer for itself.  Relying on the fact
  /// that today's decoder happens to buffer the stalled instruction (and is
  /// itself checked) would silently break the moment the dispatcher's
  /// input is registered or fed by a different upstream stage.
  bool busy() const { return in != nullptr && in->valid.peek(); }

  /// Function code of the instruction pending pre-dispatch, if any.  The
  /// hot-swap path asks this before detaching: a stalled instruction that
  /// was admitted while its unit was attached must either dispatch or be
  /// drained as a typed error — silently detaching under it would turn a
  /// valid operation into an unknown-function fault (or wedge the
  /// pipeline), which is the PR-1 quiescence blind spot all over again.
  std::optional<isa::FunctionCode> pending_function() const {
    if (in == nullptr || !in->valid.peek()) {
      return std::nullopt;
    }
    return in->data.peek().inst.function;
  }

  void eval() override {
    // Decide the routing first, then drive every output wire exactly once
    // per evaluation pass (writing a wire twice with different values in
    // one pass would defeat the kernel's change detection).
    Plan plan;
    if (in->valid.get()) {
      plan = plan_for(in->data.get());
    }
    route_ = plan.route;
    stall_reason_ = plan.stall_reason;
    // The routing decision may have *annotated* an error onto the exec
    // packet (unknown function code, dual-output register fault) that the
    // decoder's copy of the instruction does not carry; commit() must lock
    // against the annotated view, or it would take a destination lock for a
    // faulting instruction whose writes never land — and since the
    // execution stage only releases locks for successful writes, that lock
    // would leak and wedge quiescence forever.
    exec_error_ = plan.packet.di.error;

    for (std::uint32_t i = 0; i < table_->size(); ++i) {
      if (!table_->slot_active(i)) {
        continue;
      }
      fu::FunctionalUnit& unit = table_->unit(i);
      const bool selected =
          plan.route == Route::kToUnit && plan.unit_index == i;
      unit.ports.dispatch.set(selected);
      if (selected) {
        unit.ports.request.set(plan.request);
      }
    }
    if (plan.route == Route::kToExec) {
      to_exec.offer(plan.packet);
    } else {
      to_exec.withdraw();
    }
    switch (plan.route) {
      case Route::kNone:
        in->ready.set(!in->valid.get());
        break;
      case Route::kToUnit:
        in->ready.set(true);
        break;
      case Route::kToExec:
        in->ready.set(to_exec.ready.get());
        break;
    }
  }

  void commit() override {
    if (in == nullptr) {
      return;
    }
    if (!in->fire()) {
      if (stall_reason_ != kNoCounter) {
        // A stalled instruction bumps its stall counter every cycle — that
        // is clocked activity (the differential tests compare counters), so
        // this component must not be demoted while it stalls.
        counters_->bump(stall_reason_);
        mark_active();
      }
      return;
    }
    mark_active();  // a launch mutates locks/counters/trace
    const DecodedInst di = in->data.get();
    switch (route_) {
      case Route::kNone:
        break;
      case Route::kToUnit: {
        const std::uint32_t owner = unit_index_of(di);
        locks_->lock_data(di.inst.dst1, owner);
        locks_->lock_flag(di.inst.dst_flag, owner);
        if (table_->unit(owner).writes_second(di.inst.variety)) {
          locks_->lock_data(di.inst.aux, owner);
        }
        counters_->bump(h_dispatch_unit_);
        if (trace_ != nullptr) {
          trace_->event(simulator().cycle(),
                        "dispatch.unit" + std::to_string(owner), di.seq);
        }
        break;
      }
      case Route::kToExec: {
        DecodedInst annotated = di;
        annotated.error = exec_error_;
        lock_for_exec(annotated);
        counters_->bump(h_dispatch_exec_);
        if (trace_ != nullptr) {
          trace_->event(simulator().cycle(), "dispatch.exec", di.seq);
        }
        break;
      }
    }
  }

  void reset() override {
    to_exec.reset();
    route_ = Route::kNone;
    stall_reason_ = kNoCounter;
    exec_error_ = msg::ErrorCode::kNone;
  }

 private:
  enum class Route { kNone, kToUnit, kToExec };

  /// Sentinel for "no stall counter to bump this cycle".
  static constexpr sim::Counters::Handle kNoCounter =
      ~sim::Counters::Handle{0};

  struct Plan {
    Route route = Route::kNone;
    std::uint32_t unit_index = 0;
    fu::FuRequest request;
    ExecPacket packet;
    /// Counter to bump when the instruction could not launch this cycle.
    /// Accounting happens once, in commit() — eval() may re-run several
    /// times per cycle while the network settles.
    sim::Counters::Handle stall_reason = kNoCounter;
  };

  std::uint32_t unit_index_of(const DecodedInst& di) const {
    return table_->index_of(di.inst.function);
  }

  /// Decide, combinationally, what to do with the instruction this cycle.
  Plan plan_for(const DecodedInst& di) const {
    Plan plan;
    const isa::Instruction& inst = di.inst;

    // Decode-time faults go straight to the execution stage to be reported
    // in order; they touch no registers.
    if (di.error != msg::ErrorCode::kNone) {
      plan.route = Route::kToExec;
      plan.packet.di = di;
      return plan;
    }

    if (inst.function != isa::fc::kRtm) {
      fu::FunctionalUnit* unit = table_->find(inst.function);
      if (unit == nullptr) {
        // A code that is *known* but momentarily without a dispatchable
        // unit (draining ahead of an eviction, or loading after one) gets
        // the retryable kUnitUnavailable, distinct from the permanent
        // kUnknownFunction — hosts re-submit after the swap instead of
        // failing the program.
        plan.route = Route::kToExec;
        plan.packet.di = di;
        plan.packet.di.error = table_->unavailable(inst.function)
                                   ? msg::ErrorCode::kUnitUnavailable
                                   : msg::ErrorCode::kUnknownFunction;
        return plan;
      }
      // Dual-output operations additionally write dst_reg2 (the aux
      // field); it must exist and differ from dst1 (one writer per
      // register).
      const bool dual = unit->writes_second(inst.variety);
      if (dual && (!regs_->valid(inst.aux) || inst.aux == inst.dst1)) {
        plan.route = Route::kToExec;
        plan.packet.di = di;
        plan.packet.di.error = msg::ErrorCode::kBadRegister;
        return plan;
      }
      // RAW on all three sources; WAW on every destination.
      if (locks_->data_locked(inst.src1) || locks_->data_locked(inst.src2) ||
          locks_->flag_locked(inst.src_flag) ||
          locks_->data_locked(inst.dst1) ||
          locks_->flag_locked(inst.dst_flag) ||
          (dual && locks_->data_locked(inst.aux))) {
        plan.stall_reason = h_stall_lock_;
        return plan;  // kNone
      }
      if (!unit->ports.idle.get()) {
        plan.stall_reason = h_stall_unit_busy_;
        return plan;
      }
      plan.route = Route::kToUnit;
      plan.unit_index = table_->index_of(inst.function);
      plan.request.variety = inst.variety;
      plan.request.operand1 = regs_->read(inst.src1);
      plan.request.operand2 = regs_->read(inst.src2);
      plan.request.flags_in = flags_->read(inst.src_flag);
      plan.request.dst_reg = inst.dst1;
      plan.request.dst_flag_reg = inst.dst_flag;
      plan.request.dst_reg2 = inst.aux;
      return plan;
    }

    // RTM-internal instruction.
    using isa::RtmOp;
    const auto op = static_cast<RtmOp>(inst.variety);
    bool stalled = false;
    switch (op) {
      case RtmOp::kNop:
        break;
      case RtmOp::kPutVec:
      case RtmOp::kGetVec:
        // Burst headers never reach the dispatcher: the decoder expands
        // them into per-register kPut/kGet sub-instructions.
        break;
      case RtmOp::kSync:
        // Barrier: every architecturally visible write has landed.
        stalled = locks_->held() != 0;
        break;
      case RtmOp::kCopy:
        stalled = locks_->data_locked(inst.src1) ||
                  locks_->data_locked(inst.dst1);
        break;
      case RtmOp::kCopyFlags:
        stalled = locks_->flag_locked(inst.src_flag) ||
                  locks_->flag_locked(inst.dst_flag);
        break;
      case RtmOp::kPut:
      case RtmOp::kPutImm:
        stalled = locks_->data_locked(inst.dst1);
        break;
      case RtmOp::kPutFlags:
        stalled = locks_->flag_locked(inst.dst_flag);
        break;
      case RtmOp::kGet:
        stalled = locks_->data_locked(inst.src1);
        break;
      case RtmOp::kGetFlags:
        stalled = locks_->flag_locked(inst.src_flag);
        break;
    }
    if (stalled) {
      plan.stall_reason = op == RtmOp::kSync ? h_stall_sync_ : h_stall_lock_;
      return plan;
    }
    plan.route = Route::kToExec;
    plan.packet.di = di;
    // Operand fetch for the ops that read.
    switch (op) {
      case RtmOp::kCopy:
      case RtmOp::kGet:
        plan.packet.src1_value = regs_->read(inst.src1);
        break;
      case RtmOp::kCopyFlags:
      case RtmOp::kGetFlags:
        plan.packet.src_flag_value = flags_->read(inst.src_flag);
        break;
      default:
        break;
    }
    return plan;
  }

  /// Lock the destinations an execution-stage op will write (released by
  /// the write arbiter when the high-priority write lands).
  void lock_for_exec(const DecodedInst& di) {
    if (di.error != msg::ErrorCode::kNone) {
      return;
    }
    using isa::RtmOp;
    switch (static_cast<RtmOp>(di.inst.variety)) {
      case RtmOp::kCopy:
      case RtmOp::kPut:
      case RtmOp::kPutImm:
        locks_->lock_data(di.inst.dst1, LockManager::kExecutionOwner);
        break;
      case RtmOp::kCopyFlags:
      case RtmOp::kPutFlags:
        locks_->lock_flag(di.inst.dst_flag, LockManager::kExecutionOwner);
        break;
      default:
        break;
    }
  }

  RegisterFile* regs_;
  FlagRegisterFile* flags_;
  LockManager* locks_;
  FunctionalUnitTable* table_;
  sim::Counters* counters_;
  sim::Counters::Handle h_dispatch_unit_;
  sim::Counters::Handle h_dispatch_exec_;
  sim::Counters::Handle h_stall_lock_;
  sim::Counters::Handle h_stall_unit_busy_;
  sim::Counters::Handle h_stall_sync_;
  sim::EventTrace* trace_ = nullptr;
  Route route_ = Route::kNone;
  sim::Counters::Handle stall_reason_ = kNoCounter;
  /// Error the routing decision annotated onto the exec packet this cycle
  /// (kNone when the instruction is clean); see eval().
  msg::ErrorCode exec_error_ = msg::ErrorCode::kNone;
};

}  // namespace fpgafu::rtm
