#pragma once

#include <cstddef>
#include <vector>

#include "isa/types.hpp"
#include "sim/component.hpp"
#include "util/bits.hpp"
#include "util/error.hpp"

namespace fpgafu::rtm {

/// The main register file: "holds data, and its word size is configurable
/// in multiples of 32 bits" (paper §III).
///
/// This model supports configured widths of 32 and 64 bits in a 64-bit
/// container (see DESIGN.md §2).  Reads are combinational (the dispatcher
/// reads up to three operands per cycle); writes are performed exclusively
/// by the write arbiter's clocked process, which is what makes the
/// one-writer-per-cycle discipline of the hardware explicit.
class RegisterFile {
 public:
  RegisterFile(std::size_t count, unsigned width_bits)
      : words_(count), width_(width_bits) {
    check(count >= 2 && count <= 256,
          "register count must be in [2, 256] (8-bit register numbers)");
    check(width_bits % 32 == 0 && width_bits >= 32 && width_bits <= 64,
          "word width must be a multiple of 32 bits (model supports 32/64)");
  }

  std::size_t size() const { return words_.size(); }
  unsigned width() const { return width_; }
  bool valid(isa::RegNum reg) const { return reg < words_.size(); }

  isa::Word read(isa::RegNum reg) const {
    check(valid(reg), "register read out of range");
    return words_[reg];
  }

  void write(isa::RegNum reg, isa::Word value) {
    check(valid(reg), "register write out of range");
    words_[reg] = value & bits::mask(width_);
    notify();
  }

  void clear() {
    words_.assign(words_.size(), 0);
    notify();
  }

  /// Register contents are shared non-Wire state read combinationally by
  /// the dispatcher; wake the observer on every mutation (see LockManager).
  void set_observer(sim::Component* observer) { observer_ = observer; }

 private:
  void notify() {
    if (observer_ != nullptr) {
      observer_->wake();
    }
  }

  std::vector<isa::Word> words_;
  unsigned width_;
  sim::Component* observer_ = nullptr;
};

/// The secondary register file "holding vectors of flags, which are often
/// useful for controlling the functional units" (paper §III).
class FlagRegisterFile {
 public:
  explicit FlagRegisterFile(std::size_t count) : flags_(count) {
    check(count >= 1 && count <= 256, "flag register count must be in [1, 256]");
  }

  std::size_t size() const { return flags_.size(); }
  bool valid(isa::RegNum reg) const { return reg < flags_.size(); }

  isa::FlagWord read(isa::RegNum reg) const {
    check(valid(reg), "flag register read out of range");
    return flags_[reg];
  }

  void write(isa::RegNum reg, isa::FlagWord value) {
    check(valid(reg), "flag register write out of range");
    flags_[reg] = value;
    notify();
  }

  void clear() {
    flags_.assign(flags_.size(), 0);
    notify();
  }

  /// See RegisterFile::set_observer.
  void set_observer(sim::Component* observer) { observer_ = observer; }

 private:
  void notify() {
    if (observer_ != nullptr) {
      observer_->wake();
    }
  }

  std::vector<isa::FlagWord> flags_;
  sim::Component* observer_ = nullptr;
};

}  // namespace fpgafu::rtm
