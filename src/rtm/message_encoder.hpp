#pragma once

#include <string>

#include "msg/response.hpp"
#include "sim/component.hpp"
#include "sim/handshake.hpp"
#include "util/ring_buffer.hpp"

namespace fpgafu::rtm {

/// Message encoder pipeline stage (paper §III): "There are several types of
/// message that can be sent from the RTM to the host, including data
/// records and flag vectors, and these are multiplexed into a single
/// standard vector of signals."
///
/// In this model every response type already shares the msg::Response
/// vector; the encoder contributes the elasticity buffer that decouples the
/// execution stage from serialiser/link backpressure, preserving the
/// pipeline's local-stall (no global stall) property.
class MessageEncoder : public sim::Component {
 public:
  MessageEncoder(sim::Simulator& sim, std::string name, std::size_t depth = 4)
      : Component(sim, std::move(name)), buffer_(depth) {}

  sim::Handshake<msg::Response>* in = nullptr;   ///< from the execution stage
  sim::Handshake<msg::Response>* out = nullptr;  ///< to the serialiser's input

  void bind_in(sim::Handshake<msg::Response>& exec_out) { in = &exec_out; }
  void bind_out(sim::Handshake<msg::Response>& serializer_in) {
    out = &serializer_in;
  }

  std::uint64_t encoded() const { return encoded_; }
  std::size_t buffered() const { return buffer_.size(); }

  void eval() override {
    in->ready.set(!buffer_.full());
    if (!buffer_.empty()) {
      out->offer(buffer_.front());
    } else {
      out->withdraw();
    }
  }

  void commit() override {
    const bool do_pop = !buffer_.empty() && out->fire();
    const bool do_push = in->fire();
    if (do_pop) {
      buffer_.pop();
    }
    if (do_push) {
      buffer_.push(in->data.get());
      ++encoded_;
    }
    if (do_pop || do_push) {
      mark_active();  // buffer_ is clocked state the tracker cannot see
    }
  }

  void reset() override {
    buffer_.clear();
    encoded_ = 0;
  }

 private:
  RingBuffer<msg::Response> buffer_;
  std::uint64_t encoded_ = 0;
};

}  // namespace fpgafu::rtm
