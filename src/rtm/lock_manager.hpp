#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "isa/types.hpp"
#include "sim/component.hpp"
#include "util/error.hpp"

namespace fpgafu::rtm {

/// Lock manager + register usage table (paper Fig. 4).
///
/// Every destination register (data or flag) of an in-flight operation is
/// locked at dispatch and unlocked when the write arbiter retires the
/// write.  The dispatcher stalls an instruction whose sources are locked
/// (RAW) or whose destinations are locked (WAW — guaranteeing at most one
/// in-flight writer per register, which is what lets completions happen out
/// of order without ambiguity).
///
/// The usage table records *which* unit owns the pending write — the
/// paper's "Register Usage Table" — for introspection and assertions.
class LockManager {
 public:
  /// Owner id used for the execution stage's high-priority writes.
  static constexpr std::uint32_t kExecutionOwner = ~std::uint32_t{0};

  LockManager(std::size_t data_regs, std::size_t flag_regs)
      : data_owner_(data_regs, kFree), flag_owner_(flag_regs, kFree) {}

  bool data_locked(isa::RegNum reg) const {
    return data_owner_.at(reg) != kFree;
  }
  bool flag_locked(isa::RegNum reg) const {
    return flag_owner_.at(reg) != kFree;
  }

  /// Owner of a locked register (kExecutionOwner or a FU table index).
  std::uint32_t data_owner(isa::RegNum reg) const { return data_owner_.at(reg); }
  std::uint32_t flag_owner(isa::RegNum reg) const { return flag_owner_.at(reg); }

  void lock_data(isa::RegNum reg, std::uint32_t owner) {
    check(data_owner_.at(reg) == kFree, "double lock on data register");
    data_owner_[reg] = owner;
    ++held_;
    notify();
  }
  void lock_flag(isa::RegNum reg, std::uint32_t owner) {
    check(flag_owner_.at(reg) == kFree, "double lock on flag register");
    flag_owner_[reg] = owner;
    ++held_;
    notify();
  }
  void unlock_data(isa::RegNum reg) {
    check(data_owner_.at(reg) != kFree, "unlock of free data register");
    data_owner_[reg] = kFree;
    --held_;
    notify();
  }
  void unlock_flag(isa::RegNum reg) {
    check(flag_owner_.at(reg) != kFree, "unlock of free flag register");
    flag_owner_[reg] = kFree;
    --held_;
    notify();
  }

  /// Number of locks currently held; zero means every architecturally
  /// visible write has landed (the SYNC condition).
  std::size_t held() const { return held_; }

  void clear() {
    data_owner_.assign(data_owner_.size(), kFree);
    flag_owner_.assign(flag_owner_.size(), kFree);
    held_ = 0;
    notify();
  }

  /// Lock state is shared non-Wire state, read combinationally by the
  /// dispatcher but mutated from other components' commits (the write
  /// arbiter) and from host-side calls.  The observer — the component whose
  /// eval() reads it — is woken on every mutation so the event kernel's
  /// wire tracker never misses this side channel.
  void set_observer(sim::Component* observer) { observer_ = observer; }

 private:
  void notify() {
    if (observer_ != nullptr) {
      observer_->wake();
    }
  }

  static constexpr std::uint32_t kFree = ~std::uint32_t{0} - 1;
  sim::Component* observer_ = nullptr;

  std::vector<std::uint32_t> data_owner_;
  std::vector<std::uint32_t> flag_owner_;
  std::size_t held_ = 0;
};

}  // namespace fpgafu::rtm
