#pragma once

#include <string>

#include "isa/rtm_ops.hpp"
#include "rtm/decoded.hpp"
#include "rtm/register_file.hpp"
#include "sim/component.hpp"
#include "sim/handshake.hpp"

namespace fpgafu::rtm {

/// Decoder pipeline stage (paper §III, Fig. 4).
///
/// Consumes the 64-bit instruction stream from the message buffer, splits
/// off PUT instructions' inline data words, expands PUTV/GETV burst
/// transfers into per-register micro-transfers (so the lock manager keeps
/// tracking hazards per register), assigns sequence numbers, and validates
/// register numbers against the configured file sizes (the thesis notes
/// the lookup tables for this are "implicitly synthesised into the
/// decoder").  Faulty instructions are not dropped silently: they carry an
/// error code downstream so the host receives an error response in stream
/// order.
class Decoder : public sim::Component {
 public:
  Decoder(sim::Simulator& sim, std::string name, const RegisterFile& regs,
          const FlagRegisterFile& flags)
      : Component(sim, std::move(name)), out(sim), regs_(&regs),
        flags_(&flags) {}

  sim::Handshake<isa::Word>* in = nullptr;  ///< from the message buffer
  sim::Handshake<DecodedInst> out;          ///< to the dispatcher

  void bind(sim::Handshake<isa::Word>& stream) { in = &stream; }

  std::uint64_t decoded_count() const { return decoded_; }

  /// True while an instruction (or an unfinished burst) is held.
  bool busy() const {
    return have_ || mode_ != Mode::kInstruction;
  }

  void eval() override {
    // GETV expansion produces sub-instructions without consuming stream
    // words; otherwise a word can be accepted whenever the output register
    // is free or draining this cycle.
    in->ready.set(mode_ != Mode::kVecGet && (!have_ || out.ready.get()));
    if (have_) {
      out.offer(held_);
    } else {
      out.withdraw();
    }
  }

  void commit() override {
    // have_/mode_/vec bookkeeping are plain clocked state: self-report
    // whenever anything is in flight or a burst expansion is underway.
    if (have_ || mode_ != Mode::kInstruction || in->fire()) {
      mark_active();
    }
    if (have_ && out.fire()) {
      have_ = false;
    }
    if (mode_ == Mode::kVecGet) {
      if (!have_) {
        emit_vec_get();
      }
      return;
    }
    if (in->fire()) {
      const isa::Word word = in->data.get();
      switch (mode_) {
        case Mode::kInstruction:
          decode_word(word);
          break;
        case Mode::kPutData:
          held_.inline_data = word;
          held_.has_inline = true;
          have_ = true;
          mode_ = Mode::kInstruction;
          break;
        case Mode::kVecPutData:
          emit_vec_put(word);
          break;
        case Mode::kVecGet:
          break;  // unreachable: ready was deasserted
      }
    }
  }

  void reset() override {
    have_ = false;
    mode_ = Mode::kInstruction;
    held_ = DecodedInst{};
    seq_ = 0;
    decoded_ = 0;
    vec_remaining_ = 0;
    vec_base_ = 0;
    vec_index_ = 0;
    vec_discard_ = false;
    vec_seq_ = 0;
    out.reset();
  }

 private:
  enum class Mode {
    kInstruction,  ///< next stream word is an instruction
    kPutData,      ///< next stream word is the held PUT's payload
    kVecPutData,   ///< next vec_remaining_ words are PUTV payloads
    kVecGet,       ///< generating GETV sub-reads (no words consumed)
  };

  void decode_word(isa::Word word) {
    DecodedInst di;
    di.inst = isa::Instruction::decode(word);
    di.seq = seq_++;
    ++decoded_;
    di.error = validate(di.inst);

    using isa::RtmOp;
    if (di.inst.function == isa::fc::kRtm) {
      switch (static_cast<RtmOp>(di.inst.variety)) {
        case RtmOp::kPut:
          // Hold silently until the payload word arrives (the word follows
          // even when the PUT itself faulted — stream framing must stay
          // aligned).
          held_ = di;
          mode_ = Mode::kPutData;
          return;
        case RtmOp::kPutVec: {
          if (di.inst.aux == 0) {
            return;  // zero-length burst: nothing to do
          }
          vec_remaining_ = di.inst.aux;
          vec_base_ = di.inst.dst1;
          vec_index_ = 0;
          vec_seq_ = di.seq;
          vec_discard_ = di.error != msg::ErrorCode::kNone;
          mode_ = Mode::kVecPutData;
          if (vec_discard_) {
            // Report the fault once, in order; the data words are consumed
            // and discarded.
            held_ = di;
            have_ = true;
          }
          return;
        }
        case RtmOp::kGetVec: {
          if (di.inst.aux == 0) {
            return;
          }
          vec_remaining_ = di.inst.aux;
          vec_base_ = di.inst.src1;
          vec_index_ = 0;
          vec_seq_ = di.seq;
          mode_ = Mode::kVecGet;
          emit_vec_get();  // first sub-read this cycle
          return;
        }
        default:
          break;
      }
    }
    held_ = di;
    have_ = true;
  }

  /// Synthesize the next PUTV sub-transfer for an arriving payload word.
  void emit_vec_put(isa::Word word) {
    if (!vec_discard_) {
      DecodedInst di;
      di.inst.function = isa::fc::kRtm;
      di.inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kPut);
      di.inst.dst1 = static_cast<isa::RegNum>(vec_base_ + vec_index_);
      di.inline_data = word;
      di.has_inline = true;
      di.seq = vec_seq_;
      held_ = di;
      have_ = true;
    }
    ++vec_index_;
    if (--vec_remaining_ == 0) {
      mode_ = Mode::kInstruction;
    }
  }

  /// Synthesize the next GETV sub-read.
  void emit_vec_get() {
    const unsigned reg = static_cast<unsigned>(vec_base_) + vec_index_;
    DecodedInst di;
    di.inst.function = isa::fc::kRtm;
    di.inst.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    di.inst.src1 = static_cast<isa::RegNum>(reg);
    di.seq = vec_seq_;
    di.burst = vec_index_;
    di.error = reg < regs_->size() ? msg::ErrorCode::kNone
                                   : msg::ErrorCode::kBadRegister;
    held_ = di;
    have_ = true;
    ++vec_index_;
    if (--vec_remaining_ == 0) {
      mode_ = Mode::kInstruction;
    }
  }

  /// Register-number range checks (see class comment).
  msg::ErrorCode validate(const isa::Instruction& inst) const {
    using isa::RtmOp;
    auto data_ok = [&](isa::RegNum r) { return regs_->valid(r); };
    auto flag_ok = [&](isa::RegNum r) { return flags_->valid(r); };
    if (inst.function == isa::fc::kRtm) {
      switch (static_cast<RtmOp>(inst.variety)) {
        case RtmOp::kNop:
        case RtmOp::kSync:
          return msg::ErrorCode::kNone;
        case RtmOp::kCopy:
          return data_ok(inst.dst1) && data_ok(inst.src1)
                     ? msg::ErrorCode::kNone
                     : msg::ErrorCode::kBadRegister;
        case RtmOp::kCopyFlags:
          return flag_ok(inst.dst_flag) && flag_ok(inst.src_flag)
                     ? msg::ErrorCode::kNone
                     : msg::ErrorCode::kBadRegister;
        case RtmOp::kPut:
        case RtmOp::kPutImm:
          return data_ok(inst.dst1) ? msg::ErrorCode::kNone
                                    : msg::ErrorCode::kBadRegister;
        case RtmOp::kPutVec:
          // The whole burst must fit the register file.
          return static_cast<unsigned>(inst.dst1) + inst.aux <= regs_->size()
                     ? msg::ErrorCode::kNone
                     : msg::ErrorCode::kBadRegister;
        case RtmOp::kGetVec:
          // Sub-reads are validated individually (each out-of-range read
          // yields its own error response, keeping the response count at
          // aux).
          return msg::ErrorCode::kNone;
        case RtmOp::kPutFlags:
          return flag_ok(inst.dst_flag) ? msg::ErrorCode::kNone
                                        : msg::ErrorCode::kBadRegister;
        case RtmOp::kGet:
          return data_ok(inst.src1) ? msg::ErrorCode::kNone
                                    : msg::ErrorCode::kBadRegister;
        case RtmOp::kGetFlags:
          return flag_ok(inst.src_flag) ? msg::ErrorCode::kNone
                                        : msg::ErrorCode::kBadRegister;
      }
      return msg::ErrorCode::kUnknownFunction;
    }
    // Functional-unit instruction: all register fields participate in the
    // standard three-source / two-destination format.
    const bool ok = data_ok(inst.dst1) && data_ok(inst.src1) &&
                    data_ok(inst.src2) && flag_ok(inst.dst_flag) &&
                    flag_ok(inst.src_flag);
    return ok ? msg::ErrorCode::kNone : msg::ErrorCode::kBadRegister;
  }

  const RegisterFile* regs_;
  const FlagRegisterFile* flags_;
  DecodedInst held_;
  bool have_ = false;
  Mode mode_ = Mode::kInstruction;
  std::uint8_t vec_remaining_ = 0;
  isa::RegNum vec_base_ = 0;
  std::uint8_t vec_index_ = 0;
  bool vec_discard_ = false;
  std::uint16_t vec_seq_ = 0;
  std::uint16_t seq_ = 0;
  std::uint64_t decoded_ = 0;
};

}  // namespace fpgafu::rtm
