#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fu/stateless_units.hpp"
#include "msg/faulty_link.hpp"
#include "msg/link.hpp"
#include "msg/message_buffer.hpp"
#include "msg/message_serializer.hpp"
#include "rtm/rtm.hpp"
#include "util/error.hpp"
#include "xsort/unit.hpp"

namespace fpgafu::top {

/// Configuration of a complete coprocessor system (paper Fig. 2): the
/// interface circuitry (link transceiver), the hardware message buffers,
/// the RTM controller and the set of functional units.
struct SystemConfig {
  rtm::RtmConfig rtm;
  msg::LinkTiming link_down = msg::kTightLink.timing;  ///< host -> FPGA
  msg::LinkTiming link_up = msg::kTightLink.timing;    ///< FPGA -> host
  /// Bounded link transfer buffers (0 = unbounded, the historical model).
  std::size_t link_down_capacity = 0;
  std::size_t link_up_capacity = 0;
  /// When set, the link is a fault-injecting FaultyLink with these rates
  /// (an all-zero FaultConfig still swaps the implementation, which the
  /// differential tests rely on to prove it is behaviour-identical).
  std::optional<msg::FaultConfig> link_faults;
  std::size_t message_buffer_depth = 8;
  std::size_t serializer_depth = 4;

  /// FPGA clock for wall-time projections.  The paper's prototyping board
  /// ran "at approximately 50 MHz".
  double clock_mhz = 50.0;

  /// Which stateless case-study units to attach (thesis §3.2), and with
  /// which skeleton.
  bool with_arithmetic = true;
  bool with_logic = true;
  bool with_shift = true;
  /// Extension units: the multi-cycle multiply/divide unit (sequential
  /// shift-add/restoring datapath, division-by-zero error flag), the
  /// IEEE-754 single-precision soft-float unit, and the CORDIC
  /// trigonometric unit (the paper's "trigonometric function calculators").
  bool with_muldiv = true;
  bool with_float = true;
  bool with_trig = true;
  fu::Skeleton stateless_skeleton = fu::Skeleton::kMinimal;

  /// Attach the stateful χ-sort engine (thesis §3.3).
  bool with_xsort = false;
  xsort::XsortConfig xsort;

  /// Reject configurations the model cannot run: a non-positive clock
  /// (cycles_to_us would divide by it), a zero-depth message buffer or
  /// serializer (the hardware FIFOs need at least one slot to ever accept
  /// a word).  Called by the System constructor; throws SimError with a
  /// description of the offending field.
  void validate() const {
    check(clock_mhz > 0.0,
          "SystemConfig::clock_mhz must be > 0 (got " +
              std::to_string(clock_mhz) + " MHz): wall-clock projections "
              "divide by the FPGA clock");
    check(message_buffer_depth > 0,
          "SystemConfig::message_buffer_depth must be > 0: a zero-slot "
          "hardware message buffer can never accept an instruction word");
    check(serializer_depth > 0,
          "SystemConfig::serializer_depth must be > 0: a zero-slot message "
          "serializer can never accept a response");
  }
};

/// A complete simulated coprocessor: everything that would live on the
/// FPGA, plus the link to the host.  The host side talks to it through
/// host::Coprocessor.
class System {
 public:
  explicit System(const SystemConfig& config)
      : config_(validated(config)),
        link_(make_link(sim_, config)),
        buffer_(sim_, "message_buffer", config.message_buffer_depth),
        rtm_(sim_, config.rtm),
        serializer_(sim_, "message_serializer", config.serializer_depth) {
    buffer_.bind(link_->rx);
    rtm_.bind_input(buffer_.out);
    rtm_.bind_output(serializer_.in);
    serializer_.bind(link_->tx);

    fu::StatelessConfig ucfg;
    ucfg.width = config.rtm.word_width;
    ucfg.skeleton = config.stateless_skeleton;
    if (config.with_arithmetic) {
      units_.push_back(fu::make_arithmetic_unit(sim_, ucfg));
      rtm_.attach(isa::fc::kArith, *units_.back());
    }
    if (config.with_logic) {
      units_.push_back(fu::make_logic_unit(sim_, ucfg));
      rtm_.attach(isa::fc::kLogic, *units_.back());
    }
    if (config.with_shift) {
      units_.push_back(fu::make_shift_unit(sim_, ucfg));
      rtm_.attach(isa::fc::kShift, *units_.back());
    }
    if (config.with_muldiv) {
      // Always the FSM skeleton: the sequential divider is multi-cycle by
      // nature and only the FSM variant retires DIVMOD's two records.
      fu::StatelessConfig mcfg = ucfg;
      mcfg.skeleton = fu::Skeleton::kFsm;
      mcfg.execute_cycles = 0;  // factory default: one bit per clock
      units_.push_back(fu::make_muldiv_unit(sim_, mcfg));
      rtm_.attach(isa::fc::kMulDiv, *units_.back());
    }
    if (config.with_float) {
      units_.push_back(fu::make_fp32_unit(sim_, ucfg));
      rtm_.attach(isa::fc::kFloat, *units_.back());
    }
    if (config.with_trig) {
      fu::StatelessConfig tcfg = ucfg;
      if (tcfg.skeleton == fu::Skeleton::kMinimal ||
          tcfg.skeleton == fu::Skeleton::kMinimalFwd) {
        tcfg.skeleton = fu::Skeleton::kFsm;
        tcfg.execute_cycles = 0;  // factory default: one rotation per clock
      }
      units_.push_back(fu::make_trig_unit(sim_, tcfg));
      rtm_.attach(isa::fc::kTrig, *units_.back());
    }
    if (config.with_xsort) {
      xsort_ = std::make_unique<xsort::XsortUnit>(sim_, "xsort", config.xsort);
      rtm_.attach(isa::fc::kXsort, *xsort_);
    }
  }

  /// Attach an additional (user-defined) functional unit.  The unit must
  /// have been constructed against this system's simulator.
  void attach(isa::FunctionCode code, fu::FunctionalUnit& unit) {
    rtm_.attach(code, unit);
  }

  /// Detach a unit at runtime (partial reconfiguration analogue).  Quiesce
  /// first — e.g. issue a SYNC through the host driver.  Throws
  /// rtm::DetachBusy if the unit still has work in the pipeline; use the
  /// drain protocol (begin_detach / detach_drained / finish_detach) to
  /// remove a unit under live traffic instead.
  void detach(isa::FunctionCode code) { rtm_.detach(code); }

  /// Hot-swap drain protocol passthroughs (see Rtm) — used by the
  /// host-side algorithm-on-demand manager (host::FuManager).
  void begin_detach(isa::FunctionCode code) { rtm_.begin_detach(code); }
  bool detach_drained(isa::FunctionCode code) const {
    return rtm_.detach_drained(code);
  }
  void finish_detach(isa::FunctionCode code) { rtm_.finish_detach(code); }
  void declare_unavailable(isa::FunctionCode code) {
    rtm_.declare_unavailable(code);
  }

  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }
  msg::Link& link() { return *link_; }
  /// Non-null iff the config requested fault injection.
  msg::FaultyLink* faulty_link() { return faulty_link_; }
  rtm::Rtm& rtm() { return rtm_; }
  const SystemConfig& config() const { return config_; }
  xsort::XsortUnit* xsort_unit() { return xsort_.get(); }

  /// Project a cycle count onto wall-clock microseconds at the configured
  /// FPGA clock.
  double cycles_to_us(std::uint64_t cycles) const {
    return static_cast<double>(cycles) / config_.clock_mhz;
  }

  /// True when nothing is in flight anywhere on the FPGA or the link.
  bool idle() const {
    return !buffer_.busy() && rtm_.quiescent() &&
           serializer_.pending_words() == 0 && link_->drained();
  }

 private:
  /// Validation runs before any member construction (config_ is the first
  /// member), so a bad depth is reported as a SimError instead of
  /// misbehaving inside a FIFO constructor.
  static const SystemConfig& validated(const SystemConfig& config) {
    config.validate();
    return config;
  }

  std::unique_ptr<msg::Link> make_link(sim::Simulator& sim,
                                       const SystemConfig& config) {
    if (config.link_faults) {
      auto fl = std::make_unique<msg::FaultyLink>(
          sim, "link", config.link_down, config.link_up, *config.link_faults,
          config.link_down_capacity, config.link_up_capacity);
      faulty_link_ = fl.get();
      return fl;
    }
    return std::make_unique<msg::Link>(sim, "link", config.link_down,
                                       config.link_up,
                                       config.link_down_capacity,
                                       config.link_up_capacity);
  }

  SystemConfig config_;
  sim::Simulator sim_;
  msg::FaultyLink* faulty_link_ = nullptr;
  std::unique_ptr<msg::Link> link_;
  msg::MessageBuffer buffer_;
  rtm::Rtm rtm_;
  msg::MessageSerializer serializer_;
  std::vector<std::unique_ptr<fu::FunctionalUnit>> units_;
  std::unique_ptr<xsort::XsortUnit> xsort_;
};

}  // namespace fpgafu::top
