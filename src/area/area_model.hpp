#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fu/stateless_units.hpp"
#include "rtm/rtm.hpp"
#include "xsort/types.hpp"

namespace fpgafu::area {

/// FPGA resource estimate in Cyclone-style units: 4-input LUTs (logic
/// elements), flip-flops, and on-chip SRAM bits (M4K blocks hold 4 kbit).
///
/// This is a *static first-order model* standing in for synthesis reports
/// (DESIGN.md §2): absolute numbers are indicative, but the relations the
/// thesis discusses — the pipelined skeleton "uses a lot of FPGA resources
/// and especially on-chip SRAM blocks consumed by the FIFO buffers", cell
/// arrays growing linearly, trees logarithmically — hold by construction.
struct Estimate {
  std::uint64_t luts = 0;
  std::uint64_t ffs = 0;
  std::uint64_t bram_bits = 0;

  Estimate& operator+=(const Estimate& other) {
    luts += other.luts;
    ffs += other.ffs;
    bram_bits += other.bram_bits;
    return *this;
  }
  friend Estimate operator+(Estimate a, const Estimate& b) { return a += b; }
  bool operator==(const Estimate&) const = default;

  /// M4K blocks (4 kbit each), rounded up.
  std::uint64_t m4k_blocks() const { return (bram_bits + 4095) / 4096; }
};

/// A named sub-estimate for report breakdowns.
struct Line {
  std::string component;
  Estimate estimate;
};

// --- Primitive estimators ----------------------------------------------------
Estimate adder(unsigned width);
Estimate comparator(unsigned width);
Estimate mux2(unsigned width);
Estimate registers(unsigned count_bits);
Estimate fifo(std::size_t depth, unsigned width);
Estimate ram(std::size_t words, unsigned width);

// --- Framework blocks --------------------------------------------------------
Estimate register_file(std::size_t regs, unsigned width);
Estimate rtm(const rtm::RtmConfig& config);
Estimate stateless_unit(const fu::StatelessConfig& config);
Estimate xsort_unit(const xsort::XsortConfig& config);

/// Itemised report for a whole system configuration.
std::vector<Line> system_report(const rtm::RtmConfig& rtm_config,
                                const std::vector<fu::StatelessConfig>& units,
                                const xsort::XsortConfig* xsort_config);

}  // namespace fpgafu::area
