#include "area/area_model.hpp"

#include "util/bits.hpp"

namespace fpgafu::area {

Estimate adder(unsigned width) {
  // One LE per bit (carry chains are free on Cyclone).
  return {width, 0, 0};
}

Estimate comparator(unsigned width) {
  // Equality/magnitude compare also maps onto the carry chain.
  return {width, 0, 0};
}

Estimate mux2(unsigned width) { return {width, 0, 0}; }

Estimate registers(unsigned count_bits) { return {0, count_bits, 0}; }

Estimate fifo(std::size_t depth, unsigned width) {
  // Storage in M4K bits; control is two pointers plus full/empty logic.
  const unsigned ptr = bits::clog2(depth == 0 ? 1 : depth) + 1;
  Estimate e;
  e.bram_bits = static_cast<std::uint64_t>(depth) * width;
  e.ffs = 2u * ptr + 2;
  e.luts = 2u * ptr + 8;
  return e;
}

Estimate ram(std::size_t words, unsigned width) {
  Estimate e;
  e.bram_bits = static_cast<std::uint64_t>(words) * width;
  e.luts = 4;
  return e;
}

Estimate register_file(std::size_t regs, unsigned width) {
  // Small register files synthesise to FF banks with read multiplexers
  // (three read ports in the dispatcher).
  Estimate e;
  e.ffs = static_cast<std::uint64_t>(regs) * width;
  e.luts = 3u * static_cast<std::uint64_t>(regs) * width / 4;  // read muxes
  return e;
}

Estimate rtm(const rtm::RtmConfig& config) {
  Estimate e;
  // Register files (data + flags) and the lock/usage tables.
  e += register_file(config.data_regs, config.word_width);
  e += register_file(config.flag_regs, 8);
  e += registers(static_cast<unsigned>(config.data_regs + config.flag_regs) *
                 8);  // usage table entries
  // Pipeline stages: decoder, dispatcher, execution, encoder (control logic
  // plus one 64-bit stage register each).
  e += Estimate{600, 4 * 64, 0};
  // Message buffer / serialiser elasticity.
  e += fifo(config.encoder_depth, 80);
  e += fifo(8, 64);
  // Write arbiter: grant logic per unit port (assume 4 ports budgeted).
  e += Estimate{4 * 24, 16, 0};
  return e;
}

Estimate stateless_unit(const fu::StatelessConfig& config) {
  Estimate e;
  // The datapath itself: adder/LUT network plus input muxing.
  e += adder(config.width);
  e += mux2(config.width);
  e += mux2(config.width);
  switch (config.skeleton) {
    case fu::Skeleton::kMinimal:
    case fu::Skeleton::kMinimalFwd:
      // Output register array + ready flag (Fig. 5's three registers).
      e += registers(config.width + 8 + 1);
      if (config.skeleton == fu::Skeleton::kMinimalFwd) {
        e += Estimate{4, 0, 0};  // the forwarding gates
      }
      break;
    case fu::Skeleton::kFsm:
      // FSM state, request latch, result latch.
      e += registers(2 + 2 * config.width + 24);
      e += Estimate{24, 0, 0};  // next-state logic
      break;
    case fu::Skeleton::kPipelined:
      // Pipeline stage registers plus the output FIFOs (data, flags,
      // destination reg numbers — the thesis' SRAM consumers).
      e += registers(config.pipeline_depth * (config.width + 24));
      e += fifo(config.fifo_capacity, config.width);
      e += fifo(config.fifo_capacity, 8);   // flags
      e += fifo(config.fifo_capacity, 16);  // destination registers
      break;
  }
  return e;
}

Estimate xsort_unit(const xsort::XsortConfig& config) {
  Estimate e;
  const unsigned cell_state =
      config.data_bits + 2 * config.interval_bits + 2;  // data, bounds, flags
  // Per cell: state registers, one data comparator, one bound comparator,
  // selection gating and input muxes (Fig. 3.12).
  Estimate cell;
  cell += registers(cell_state);
  cell += comparator(config.data_bits);
  cell += comparator(config.interval_bits);
  cell += mux2(config.data_bits);
  cell += Estimate{12, 0, 0};  // selection network gates
  for (std::size_t i = 0; i < config.cells; ++i) {
    e += cell;
  }
  // Interior tree nodes: one count adder + one leftmost mux per node,
  // (cells - 1) nodes in a binary tree.
  const std::uint64_t nodes = config.cells > 0 ? config.cells - 1 : 0;
  Estimate node;
  node += adder(bits::clog2(config.cells == 0 ? 1 : config.cells) + 1);
  node += mux2(config.data_bits + 2 * config.interval_bits);
  for (std::uint64_t i = 0; i < nodes; ++i) {
    e += node;
  }
  // Controller FSM + microcode ROM (~32 words x 24 bits) + adapter.
  e += ram(32, 24);
  e += registers(64 + 16);
  e += Estimate{80, 0, 0};
  return e;
}

std::vector<Line> system_report(const rtm::RtmConfig& rtm_config,
                                const std::vector<fu::StatelessConfig>& units,
                                const xsort::XsortConfig* xsort_config) {
  std::vector<Line> lines;
  lines.push_back({"rtm_controller", rtm(rtm_config)});
  for (std::size_t i = 0; i < units.size(); ++i) {
    lines.push_back(
        {"stateless_unit_" + std::to_string(i), stateless_unit(units[i])});
  }
  if (xsort_config != nullptr) {
    lines.push_back({"xsort_unit", xsort_unit(*xsort_config)});
  }
  Estimate total;
  for (const Line& l : lines) {
    total += l.estimate;
  }
  lines.push_back({"total", total});
  return lines;
}

}  // namespace fpgafu::area
