#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace fpgafu {

/// Column-aligned plain-text table writer.
///
/// The benchmark harness uses this to regenerate the paper's encoding tables
/// (thesis Tables 3.1 / 3.2) and to print experiment result series in a shape
/// comparable to the paper's reporting.
class TextTable {
 public:
  /// Begin a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with single-space-padded columns and a rule under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
std::string format_fixed(double value, int decimals);
std::string format_bits(std::uint64_t value, unsigned width);

}  // namespace fpgafu
