#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace fpgafu {

/// Fixed-capacity FIFO ring buffer.
///
/// This is the storage behind the simulated hardware FIFOs (sim::HwFifo) and
/// the software-side message queues.  Capacity is fixed at construction, as
/// it would be for a synthesised FPGA FIFO; push on a full buffer and pop on
/// an empty buffer are programming errors and throw.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    check(capacity > 0, "RingBuffer capacity must be positive");
  }

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }

  void push(T value) {
    check(!full(), "RingBuffer::push on full buffer");
    slots_[(head_ + size_) % slots_.size()] = std::move(value);
    ++size_;
  }

  const T& front() const {
    check(!empty(), "RingBuffer::front on empty buffer");
    return slots_[head_];
  }

  /// Element `i` positions behind the front (0 == front).
  const T& at(std::size_t i) const {
    check(i < size_, "RingBuffer::at out of range");
    return slots_[(head_ + i) % slots_.size()];
  }

  T pop() {
    check(!empty(), "RingBuffer::pop on empty buffer");
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return value;
  }

  /// Empty the buffer and release the old payloads.  Resetting only the
  /// head/size bookkeeping would keep every previously stored element alive
  /// in `slots_` — for payloads that own resources (queued messages holding
  /// heap buffers) that is a silent leak until the slot is overwritten.
  /// Assigning a fresh default also works for move-only element types,
  /// which `slots_ = std::vector<T>(n)` would not require but `std::fill`
  /// with an lvalue prototype would reject.
  void clear() {
    for (T& slot : slots_) {
      slot = T{};
    }
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace fpgafu
