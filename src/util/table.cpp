#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "util/error.hpp"

namespace fpgafu {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  check(!headers_.empty(), "TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  check(cells.size() == headers_.size(),
        "TextTable row width does not match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_bits(std::uint64_t value, unsigned width) {
  std::string out;
  out.reserve(width);
  for (unsigned i = width; i-- > 0;) {
    out.push_back(((value >> i) & 1u) != 0 ? '1' : '0');
  }
  return out;
}

}  // namespace fpgafu
