#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <type_traits>

#include "util/error.hpp"

/// Bit-manipulation helpers used by the instruction codec, the register
/// transfer machine and the functional units.  All helpers operate on
/// uint64_t words; field positions follow the [hi:lo] inclusive convention
/// used in the paper's encoding tables.
namespace fpgafu::bits {

/// Mask with `width` low bits set.  width == 64 yields all-ones.
constexpr std::uint64_t mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

/// Extract the inclusive bit range [hi:lo] from `word`.
constexpr std::uint64_t field(std::uint64_t word, unsigned hi, unsigned lo) {
  return (word >> lo) & mask(hi - lo + 1);
}

/// Return `word` with bit range [hi:lo] replaced by the low bits of `value`.
constexpr std::uint64_t with_field(std::uint64_t word, unsigned hi, unsigned lo,
                                   std::uint64_t value) {
  const std::uint64_t m = mask(hi - lo + 1);
  return (word & ~(m << lo)) | ((value & m) << lo);
}

/// Test a single bit.
constexpr bool bit(std::uint64_t word, unsigned pos) {
  return ((word >> pos) & 1u) != 0;
}

/// Return `word` with bit `pos` set to `value`.
constexpr std::uint64_t with_bit(std::uint64_t word, unsigned pos, bool value) {
  return value ? (word | (std::uint64_t{1} << pos))
               : (word & ~(std::uint64_t{1} << pos));
}

/// Sign-extend the low `width` bits of `word` to a signed 64-bit value.
constexpr std::int64_t sign_extend(std::uint64_t word, unsigned width) {
  const std::uint64_t m = mask(width);
  const std::uint64_t v = word & m;
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  return static_cast<std::int64_t>((v ^ sign) - sign);
}

/// True iff `value` fits in `width` unsigned bits.
constexpr bool fits_unsigned(std::uint64_t value, unsigned width) {
  return width >= 64 || value <= mask(width);
}

/// CRC-16/CCITT-FALSE step (polynomial 0x1021, MSB first).  Used by the
/// host link framing: small enough to synthesise as a byte-serial LFSR next
/// to the message serialiser, strong enough to catch the single-bit upsets
/// and torn frames the transport layer must detect.
constexpr std::uint16_t crc16_byte(std::uint16_t crc, std::uint8_t byte) {
  crc = static_cast<std::uint16_t>(crc ^ (static_cast<std::uint16_t>(byte) << 8));
  for (int i = 0; i < 8; ++i) {
    crc = (crc & 0x8000u) != 0
              ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
              : static_cast<std::uint16_t>(crc << 1);
  }
  return crc;
}

/// Fold a 32-bit word into a CRC-16, most significant byte first (matching
/// the link's MSW-first transmission order).
constexpr std::uint16_t crc16_word(std::uint16_t crc, std::uint32_t word) {
  crc = crc16_byte(crc, static_cast<std::uint8_t>(word >> 24));
  crc = crc16_byte(crc, static_cast<std::uint8_t>(word >> 16));
  crc = crc16_byte(crc, static_cast<std::uint8_t>(word >> 8));
  crc = crc16_byte(crc, static_cast<std::uint8_t>(word));
  return crc;
}

/// ceil(log2(n)) for n >= 1: the number of address bits needed to index n
/// items.  Mirrors the VHDL idiom used for sizing register-number fields.
constexpr unsigned clog2(std::uint64_t n) {
  unsigned b = 0;
  std::uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++b;
  }
  return b;
}

/// True iff n is a power of two (n >= 1).
constexpr bool is_pow2(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Population count of `word` limited to the low `width` bits.
inline unsigned popcount(std::uint64_t word, unsigned width = 64) {
  return static_cast<unsigned>(std::popcount(word & mask(width)));
}

/// Sum and carry-out of a `width`-bit addition a + b + carry_in.  The inputs
/// are masked to `width` bits first; works for the full 64-bit case without
/// needing a wider intermediate type.
struct AddResult {
  std::uint64_t sum;
  bool carry;
};

constexpr AddResult add_with_carry(std::uint64_t a, std::uint64_t b,
                                   bool carry_in, unsigned width) {
  const std::uint64_t m = mask(width);
  a &= m;
  b &= m;
  if (width >= 64) {
    const std::uint64_t partial = a + b;
    const bool c1 = partial < a;
    const std::uint64_t sum = partial + (carry_in ? 1 : 0);
    const bool c2 = sum < partial;
    return {sum, c1 || c2};
  }
  const std::uint64_t wide = a + b + (carry_in ? 1 : 0);
  return {wide & m, (wide >> width) != 0};
}

}  // namespace fpgafu::bits
