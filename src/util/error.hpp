#pragma once

#include <stdexcept>
#include <string>

namespace fpgafu {

/// Error raised when the simulated hardware model itself is misused or
/// reaches an impossible state (combinational loop, watchdog timeout,
/// out-of-range register index, ...).  Configuration errors made by the
/// user of the library also surface as SimError.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Throw SimError if `cond` is false.  Used for precondition checks on the
/// public API; internal invariants use assert-style checks as well so that
/// misbehaviour is caught in release builds too (this is a simulator, and a
/// silently-wrong cycle count is worse than an abort).
inline void check(bool cond, const std::string& message) {
  if (!cond) {
    throw SimError(message);
  }
}

}  // namespace fpgafu
