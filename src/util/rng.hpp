#pragma once

#include <cstdint>

namespace fpgafu {

/// Deterministic xoshiro256** pseudo-random generator.
///
/// Used for workload generation in tests and benchmarks so that every run of
/// the reproduction harness sees the same data regardless of the standard
/// library.  It also backs the pseudo-random-number stateful functional unit
/// example mentioned in the paper (Section IV-B lists PRNGs as a canonical
/// stateful unit).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound).  bound == 0 returns 0.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Plain modulo; the bias is negligible for simulator workloads and it
    // keeps the header free of compiler extensions.
    return next() % bound;
  }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability numerator/denominator.
  bool chance(std::uint64_t numerator, std::uint64_t denominator) {
    return below(denominator) < numerator;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace fpgafu
