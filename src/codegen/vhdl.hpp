#pragma once

#include <string>

#include "fu/stateless_units.hpp"
#include "rtm/rtm.hpp"
#include "xsort/types.hpp"

namespace fpgafu::codegen {

/// VHDL emission — the bridge back to the paper's actual deliverable.
///
/// The original framework is "a generic controller circuit defined in VHDL
/// that can be configured by the user"; its architecture "is specified as a
/// set of generics in VHDL".  This module turns a validated C++ model
/// configuration into those artefacts:
///
///  * a generics package capturing the RTM configuration,
///  * a functional-unit entity skeleton with the framework's standard port
///    protocol and the chosen §2.3.4 skeleton's registers/FSM already in
///    place (the user fills in the combinational core), and
///  * a χ-sort cell entity matching thesis Fig. 3.12.
///
/// The intended workflow: explore a design in the simulator, then emit the
/// matching VHDL starting points for synthesis.
std::string rtm_generics_package(const rtm::RtmConfig& config,
                                 const std::string& package_name = "fpgafu_config");

/// Entity + architecture skeleton for a stateless functional unit with the
/// standard signal protocol (paper Fig. 5 port list).
std::string functional_unit_entity(const std::string& name,
                                   const fu::StatelessConfig& config);

/// Entity for one χ-sort SIMD cell (thesis Fig. 3.12 port list), sized by
/// the config's data/interval widths.
std::string xsort_cell_entity(const xsort::XsortConfig& config);

}  // namespace fpgafu::codegen
