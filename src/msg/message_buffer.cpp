#include "msg/message_buffer.hpp"

#include "util/error.hpp"

namespace fpgafu::msg {

MessageBuffer::MessageBuffer(sim::Simulator& sim, std::string name,
                             std::size_t depth)
    : Component(sim, std::move(name)), out(sim), buffer_(depth) {}

void MessageBuffer::eval() {
  check(in != nullptr, "MessageBuffer not bound to a link");
  // Accept the high half unconditionally; accept the low half only while
  // there is FIFO space for the assembled word.
  in->ready.set(!have_high_ || !buffer_.full());
  if (!buffer_.empty()) {
    out.offer(buffer_.front());
  } else {
    out.withdraw();
  }
}

void MessageBuffer::commit() {
  const bool do_pop = out.fire();
  const bool do_push = in->fire();
  if (do_pop) {
    buffer_.pop();
  }
  if (do_push) {
    if (!have_high_) {
      high_ = in->data.get();
      have_high_ = true;
    } else {
      buffer_.push((static_cast<isa::Word>(high_) << 32) | in->data.get());
      have_high_ = false;
    }
  }
  if (do_pop || do_push) {
    mark_active();  // buffer_/high_ are clocked state the tracker cannot see
  }
}

void MessageBuffer::reset() {
  buffer_.clear();
  have_high_ = false;
  high_ = 0;
  out.reset();
}

}  // namespace fpgafu::msg
