#include "msg/faulty_link.hpp"

namespace fpgafu::msg {

namespace {
constexpr std::uint64_t kPpmDenominator = 1'000'000;
}  // namespace

FaultyLink::FaultyLink(sim::Simulator& sim, std::string name,
                       LinkTiming down_timing, LinkTiming up_timing,
                       FaultConfig fault_config, std::size_t down_capacity,
                       std::size_t up_capacity)
    : Link(sim, std::move(name), down_timing, up_timing, down_capacity,
           up_capacity),
      config_(fault_config),
      rng_(fault_config.seed) {
  for (int dir = 0; dir < 2; ++dir) {
    const std::string prefix = dir == 0 ? "link.down_" : "link.up_";
    dropped_[dir] = counters_.handle(prefix + "dropped");
    corrupted_[dir] = counters_.handle(prefix + "corrupted");
    duplicated_[dir] = counters_.handle(prefix + "duplicated");
  }
}

Link::Injection FaultyLink::classify(bool downstream, LinkWord& word) {
  const FaultRates& r = downstream ? config_.down : config_.up;
  const int dir = downstream ? 0 : 1;
  Injection inj;
  if (r.jitter_max != 0) {
    inj.extra_latency = static_cast<std::uint32_t>(rng_.below(r.jitter_max + 1));
  }
  if (r.drop_ppm != 0 && rng_.chance(r.drop_ppm, kPpmDenominator)) {
    inj.drop = true;
    counters_.bump(dropped_[dir]);
    return inj;
  }
  if (r.corrupt_ppm != 0 && rng_.chance(r.corrupt_ppm, kPpmDenominator)) {
    word ^= LinkWord{1} << rng_.below(32);
    counters_.bump(corrupted_[dir]);
  } else if (r.duplicate_ppm != 0 &&
             rng_.chance(r.duplicate_ppm, kPpmDenominator)) {
    inj.duplicate = true;
    counters_.bump(duplicated_[dir]);
  }
  return inj;
}

void FaultyLink::reset() {
  Link::reset();
  // Re-seed so a reset run replays the same fault pattern, and zero the
  // statistics along with the base link's word counts.
  rng_ = Xoshiro256(config_.seed);
  counters_.clear();
}

}  // namespace fpgafu::msg
