#include "msg/message_serializer.hpp"

#include "util/error.hpp"

namespace fpgafu::msg {

MessageSerializer::MessageSerializer(sim::Simulator& sim, std::string name,
                                     std::size_t depth)
    : Component(sim, std::move(name)),
      in(sim),
      pending_(depth * kLinkWordsPerResponse) {}

void MessageSerializer::eval() {
  check(out != nullptr, "MessageSerializer not bound to a link");
  // Accept a response only when all of its link words fit.
  in.ready.set(pending_.capacity() - pending_.size() >= kLinkWordsPerResponse);
  if (!pending_.empty()) {
    out->offer(pending_.front());
  } else {
    out->withdraw();
  }
}

void MessageSerializer::commit() {
  const bool do_pop = out->fire();
  const bool do_push = in.fire();
  if (do_pop) {
    pending_.pop();
  }
  if (do_push) {
    for (const LinkWord w : in.data.get().to_link_words()) {
      pending_.push(w);
    }
  }
  if (do_pop || do_push) {
    mark_active();  // pending_ is clocked state the tracker cannot see
  }
}

void MessageSerializer::reset() {
  pending_.clear();
  in.reset();
}

}  // namespace fpgafu::msg
