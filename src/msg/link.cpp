#include "msg/link.hpp"

#include <algorithm>
#include <limits>

namespace fpgafu::msg {

Link::Link(sim::Simulator& sim, std::string name, LinkTiming down_timing,
           LinkTiming up_timing, std::size_t down_capacity,
           std::size_t up_capacity)
    : Component(sim, std::move(name)),
      rx(sim),
      tx(sim),
      down_(down_timing),
      up_(up_timing),
      down_capacity_(down_capacity),
      up_capacity_(up_capacity) {}

void Link::enqueue(std::deque<InFlight>& queue, LinkWord word,
                   std::uint64_t arrives_at) {
  if (!queue.empty()) {
    arrives_at = std::max(arrives_at, queue.back().arrives_at);
  }
  queue.push_back({word, arrives_at});
}

bool Link::host_send(LinkWord word) {
  if (down_capacity_ != 0 && down_queue_.size() >= down_capacity_) {
    ++send_rejects_;
    return false;
  }
  // Rate-limit departures, then add flight latency.
  const std::uint64_t depart =
      std::max<std::uint64_t>(simulator().cycle(), down_next_slot_);
  down_next_slot_ = depart + down_.interval;
  const Injection inj = classify(/*downstream=*/true, word);
  if (!inj.drop) {
    enqueue(down_queue_, word, depart + down_.latency + inj.extra_latency);
    if (inj.duplicate) {
      down_next_slot_ += down_.interval;
      enqueue(down_queue_, word,
              depart + down_.interval + down_.latency + inj.extra_latency);
    }
  }
  // Host-side mutation of sim-visible state (rx presentation) between
  // cycles: schedule ourselves so the event kernel notices.
  wake();
  return true;
}

std::size_t Link::host_space() const {
  if (down_capacity_ == 0) {
    return std::numeric_limits<std::size_t>::max();
  }
  return down_queue_.size() >= down_capacity_
             ? 0
             : down_capacity_ - down_queue_.size();
}

std::optional<LinkWord> Link::host_receive() {
  if (up_queue_.empty() ||
      up_queue_.front().arrives_at > simulator().cycle()) {
    return std::nullopt;
  }
  const LinkWord w = up_queue_.front().word;
  up_queue_.pop_front();
  // A pop can re-open a bounded upstream buffer (tx.ready).
  wake();
  return w;
}

std::size_t Link::host_available() const {
  const std::uint64_t now = simulator().cycle();
  std::size_t n = 0;
  for (const InFlight& f : up_queue_) {
    if (f.arrives_at <= now) {
      ++n;
    } else {
      break;  // queue is ordered by arrival
    }
  }
  return n;
}

bool Link::drained() const { return down_queue_.empty() && up_queue_.empty(); }

void Link::inject_upstream(LinkWord word) {
  enqueue(up_queue_, word, simulator().cycle());
  wake();
}

void Link::eval() {
  // Downstream: present the head word to the FPGA once it has "arrived" at
  // the FPGA-side pins.
  if (!down_queue_.empty() &&
      down_queue_.front().arrives_at <= simulator().cycle()) {
    rx.offer(down_queue_.front().word);
  } else {
    rx.withdraw();
  }
  // Upstream: the transmitter accepts a new word when the previous one has
  // cleared the serialisation interval and the bounded buffer has room.
  tx.ready.set(simulator().cycle() >= up_next_slot_ &&
               (up_capacity_ == 0 || up_queue_.size() < up_capacity_));
}

void Link::commit() {
  if (rx.fire()) {
    down_queue_.pop_front();
    ++words_down_;
  }
  if (tx.fire()) {
    const std::uint64_t now = simulator().cycle();
    up_next_slot_ = now + up_.interval;
    ++words_up_;
    LinkWord word = tx.data.get();
    const Injection inj = classify(/*downstream=*/false, word);
    if (!inj.drop) {
      enqueue(up_queue_, word, now + up_.latency + inj.extra_latency);
      if (inj.duplicate) {
        up_next_slot_ += up_.interval;
        enqueue(up_queue_, word,
                now + up_.interval + up_.latency + inj.extra_latency);
      }
    }
  }
  // eval() is a function of *time* while words are in flight downstream
  // (arrival) or the serialisation interval is still running (tx.ready
  // re-assertion — which must happen even when a faulty subclass dropped
  // the word, leaving both queues empty): stay scheduled until the last
  // timer expires, then go quiet.
  if (rx.fire() || tx.fire() || !down_queue_.empty() ||
      up_next_slot_ > simulator().cycle()) {
    mark_active();
  }
}

void Link::reset() {
  down_queue_.clear();
  up_queue_.clear();
  down_next_slot_ = 0;
  up_next_slot_ = 0;
  words_down_ = 0;
  words_up_ = 0;
  send_rejects_ = 0;
  rx.reset();
  tx.reset();
}

}  // namespace fpgafu::msg
