#include "msg/link.hpp"

#include <algorithm>

namespace fpgafu::msg {

Link::Link(sim::Simulator& sim, std::string name, LinkTiming down_timing,
           LinkTiming up_timing)
    : Component(sim, std::move(name)),
      rx(sim),
      tx(sim),
      down_(down_timing),
      up_(up_timing) {}

void Link::host_send(LinkWord word) {
  // Rate-limit departures, then add flight latency.
  const std::uint64_t depart =
      std::max<std::uint64_t>(simulator().cycle(), down_next_slot_);
  down_next_slot_ = depart + down_.interval;
  down_queue_.push_back({word, depart + down_.latency});
}

std::optional<LinkWord> Link::host_receive() {
  if (up_queue_.empty() ||
      up_queue_.front().arrives_at > simulator().cycle()) {
    return std::nullopt;
  }
  const LinkWord w = up_queue_.front().word;
  up_queue_.pop_front();
  return w;
}

std::size_t Link::host_available() const {
  const std::uint64_t now = simulator().cycle();
  std::size_t n = 0;
  for (const InFlight& f : up_queue_) {
    if (f.arrives_at <= now) {
      ++n;
    } else {
      break;  // queue is ordered by arrival
    }
  }
  return n;
}

bool Link::drained() const { return down_queue_.empty() && up_queue_.empty(); }

void Link::eval() {
  // Downstream: present the head word to the FPGA once it has "arrived" at
  // the FPGA-side pins.
  if (!down_queue_.empty() &&
      down_queue_.front().arrives_at <= simulator().cycle()) {
    rx.offer(down_queue_.front().word);
  } else {
    rx.withdraw();
  }
  // Upstream: the transmitter accepts a new word when the previous one has
  // cleared the serialisation interval.
  tx.ready.set(simulator().cycle() >= up_next_slot_);
}

void Link::commit() {
  if (rx.fire()) {
    down_queue_.pop_front();
    ++words_down_;
  }
  if (tx.fire()) {
    const std::uint64_t now = simulator().cycle();
    up_next_slot_ = now + up_.interval;
    up_queue_.push_back({tx.data.get(), now + up_.latency});
    ++words_up_;
  }
}

void Link::reset() {
  down_queue_.clear();
  up_queue_.clear();
  down_next_slot_ = 0;
  up_next_slot_ = 0;
  words_down_ = 0;
  words_up_ = 0;
  rx.reset();
  tx.reset();
}

}  // namespace fpgafu::msg
