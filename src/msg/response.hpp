#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/types.hpp"

namespace fpgafu::msg {

/// Physical-layer transfer unit.  The link moves 32-bit words, matching the
/// paper's register file granularity ("configurable in multiples of 32
/// bits") and typical COTS transceiver widths.
using LinkWord = std::uint32_t;

/// Host-to-FPGA framing: each 64-bit stream word travels as two link words,
/// most significant first.
inline constexpr unsigned kLinkWordsPerStreamWord = 2;

/// Error codes carried in error responses.
enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kUnknownFunction = 1,  ///< no functional unit registered for the code
  kBadRegister = 2,      ///< register number exceeds the configured file size
  kTruncatedPut = 3,     ///< stream ended before a PUT's data word
  kTransport = 4,        ///< synthesised by host::ReliableTransport: the
                         ///< response was lost and the instruction could
                         ///< not be safely re-submitted
  kUnitUnavailable = 5,  ///< the function code is *known* but its unit is
                         ///< currently detached, draining or loading (FU
                         ///< hot-swap in progress) — retry after the swap,
                         ///< unlike kUnknownFunction which is permanent
};

/// One message from the coprocessor back to the host.  The message encoder
/// multiplexes "several types of message ... including data records and flag
/// vectors ... into a single standard vector of signals" (paper §III);
/// this struct is that standard vector.
struct Response {
  enum class Type : std::uint8_t {
    kData = 1,      ///< payload = register value (GET)
    kFlags = 2,     ///< code = flag vector (GETF)
    kSyncDone = 3,  ///< barrier completed (SYNC)
    kError = 0x7f,  ///< code = ErrorCode; seq identifies the instruction
  };

  Type type = Type::kData;
  std::uint8_t code = 0;  ///< flag vector or error code
  std::uint16_t seq = 0;  ///< response sequence number (issue order)
  isa::Word payload = 0;
  /// Sub-response index within a GETV burst (all sub-responses share the
  /// header instruction's seq; this field disambiguates them so the host
  /// can detect a duplicated or missing sub-response).  0 outside bursts.
  std::uint16_t burst = 0;

  bool operator==(const Response&) const = default;

  /// Serialise to the four link words the message serialiser transmits:
  /// header {type, code, seq}, payload high half, payload low half, and a
  /// check word {burst index, CRC-16 over the preceding three words and
  /// the burst index}.
  std::array<LinkWord, 4> to_link_words() const;

  /// Reassemble from four link words (host-side deframer).  Does not
  /// validate; call frame_ok() first when the words came off a real link.
  static Response from_link_words(const std::array<LinkWord, 4>& words);

  /// True when the frame's check word matches its contents — a corrupted,
  /// torn or misaligned frame fails this with probability ~1 - 2^-16.
  static bool frame_ok(const std::array<LinkWord, 4>& words);

  /// The check word for a frame: (burst << 16) | crc16.
  static LinkWord check_word(LinkWord header, LinkWord payload_hi,
                             LinkWord payload_lo, std::uint16_t burst);
};

inline constexpr unsigned kLinkWordsPerResponse = 4;

std::string to_string(const Response& r);

}  // namespace fpgafu::msg
