#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/types.hpp"

namespace fpgafu::msg {

/// Physical-layer transfer unit.  The link moves 32-bit words, matching the
/// paper's register file granularity ("configurable in multiples of 32
/// bits") and typical COTS transceiver widths.
using LinkWord = std::uint32_t;

/// Host-to-FPGA framing: each 64-bit stream word travels as two link words,
/// most significant first.
inline constexpr unsigned kLinkWordsPerStreamWord = 2;

/// Error codes carried in error responses.
enum class ErrorCode : std::uint8_t {
  kNone = 0,
  kUnknownFunction = 1,  ///< no functional unit registered for the code
  kBadRegister = 2,      ///< register number exceeds the configured file size
  kTruncatedPut = 3,     ///< stream ended before a PUT's data word
};

/// One message from the coprocessor back to the host.  The message encoder
/// multiplexes "several types of message ... including data records and flag
/// vectors ... into a single standard vector of signals" (paper §III);
/// this struct is that standard vector.
struct Response {
  enum class Type : std::uint8_t {
    kData = 1,      ///< payload = register value (GET)
    kFlags = 2,     ///< code = flag vector (GETF)
    kSyncDone = 3,  ///< barrier completed (SYNC)
    kError = 0x7f,  ///< code = ErrorCode; seq identifies the instruction
  };

  Type type = Type::kData;
  std::uint8_t code = 0;  ///< flag vector or error code
  std::uint16_t seq = 0;  ///< response sequence number (issue order)
  isa::Word payload = 0;

  bool operator==(const Response&) const = default;

  /// Serialise to the three link words the message serialiser transmits:
  /// header {type, code, seq}, payload high half, payload low half.
  std::array<LinkWord, 3> to_link_words() const;

  /// Reassemble from three link words (host-side deframer).
  static Response from_link_words(const std::array<LinkWord, 3>& words);
};

inline constexpr unsigned kLinkWordsPerResponse = 3;

std::string to_string(const Response& r);

}  // namespace fpgafu::msg
