#pragma once

#include <cstddef>
#include <string>

#include "isa/types.hpp"
#include "msg/response.hpp"
#include "sim/component.hpp"
#include "sim/handshake.hpp"
#include "util/ring_buffer.hpp"

namespace fpgafu::msg {

/// First pipeline stage (paper §III): "receives data from the FPGA input
/// port connected to the host processor, and converts it to a form usable by
/// the decoder".
///
/// Concretely: reassembles pairs of 32-bit link words (MSW first) into
/// 64-bit stream words and buffers them in a small hardware FIFO, so bursts
/// from the link are absorbed while the decoder is stalled.
class MessageBuffer : public sim::Component {
 public:
  MessageBuffer(sim::Simulator& sim, std::string name, std::size_t depth = 8);

  sim::Handshake<LinkWord>* in = nullptr;   ///< bound to Link::rx
  sim::Handshake<isa::Word> out;            ///< to the decoder

  /// Connect to the link's receive port.
  void bind(sim::Handshake<LinkWord>& link_rx) { in = &link_rx; }

  void eval() override;
  void commit() override;
  void reset() override;

  std::size_t buffered_words() const { return buffer_.size(); }

  /// True while any word (or half word) is held.
  bool busy() const { return !buffer_.empty() || have_high_; }

 private:
  RingBuffer<isa::Word> buffer_;
  bool have_high_ = false;
  LinkWord high_ = 0;
};

}  // namespace fpgafu::msg
