#include "msg/response.hpp"

#include <cstdio>

namespace fpgafu::msg {

std::array<LinkWord, 3> Response::to_link_words() const {
  const LinkWord header = (static_cast<LinkWord>(type) << 24) |
                          (static_cast<LinkWord>(code) << 16) |
                          static_cast<LinkWord>(seq);
  return {header, static_cast<LinkWord>(payload >> 32),
          static_cast<LinkWord>(payload & 0xffffffffu)};
}

Response Response::from_link_words(const std::array<LinkWord, 3>& words) {
  Response r;
  r.type = static_cast<Type>((words[0] >> 24) & 0xff);
  r.code = static_cast<std::uint8_t>((words[0] >> 16) & 0xff);
  r.seq = static_cast<std::uint16_t>(words[0] & 0xffff);
  r.payload = (static_cast<isa::Word>(words[1]) << 32) | words[2];
  return r;
}

std::string to_string(const Response& r) {
  char buf[96];
  const char* type = "?";
  switch (r.type) {
    case Response::Type::kData: type = "DATA"; break;
    case Response::Type::kFlags: type = "FLAGS"; break;
    case Response::Type::kSyncDone: type = "SYNC"; break;
    case Response::Type::kError: type = "ERROR"; break;
  }
  std::snprintf(buf, sizeof buf, "%s seq=%u code=0x%02x payload=0x%llx", type,
                r.seq, r.code, static_cast<unsigned long long>(r.payload));
  return buf;
}

}  // namespace fpgafu::msg
