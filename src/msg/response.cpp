#include "msg/response.hpp"

#include <cstdio>

#include "util/bits.hpp"

namespace fpgafu::msg {

LinkWord Response::check_word(LinkWord header, LinkWord payload_hi,
                              LinkWord payload_lo, std::uint16_t burst) {
  std::uint16_t crc = 0xffff;
  crc = bits::crc16_word(crc, header);
  crc = bits::crc16_word(crc, payload_hi);
  crc = bits::crc16_word(crc, payload_lo);
  crc = bits::crc16_byte(crc, static_cast<std::uint8_t>(burst >> 8));
  crc = bits::crc16_byte(crc, static_cast<std::uint8_t>(burst));
  return (static_cast<LinkWord>(burst) << 16) | crc;
}

std::array<LinkWord, 4> Response::to_link_words() const {
  const LinkWord header = (static_cast<LinkWord>(type) << 24) |
                          (static_cast<LinkWord>(code) << 16) |
                          static_cast<LinkWord>(seq);
  const LinkWord hi = static_cast<LinkWord>(payload >> 32);
  const LinkWord lo = static_cast<LinkWord>(payload & 0xffffffffu);
  return {header, hi, lo, check_word(header, hi, lo, burst)};
}

Response Response::from_link_words(const std::array<LinkWord, 4>& words) {
  Response r;
  r.type = static_cast<Type>((words[0] >> 24) & 0xff);
  r.code = static_cast<std::uint8_t>((words[0] >> 16) & 0xff);
  r.seq = static_cast<std::uint16_t>(words[0] & 0xffff);
  r.payload = (static_cast<isa::Word>(words[1]) << 32) | words[2];
  r.burst = static_cast<std::uint16_t>(words[3] >> 16);
  return r;
}

bool Response::frame_ok(const std::array<LinkWord, 4>& words) {
  const auto burst = static_cast<std::uint16_t>(words[3] >> 16);
  return check_word(words[0], words[1], words[2], burst) == words[3];
}

std::string to_string(const Response& r) {
  char buf[112];
  const char* type = "?";
  switch (r.type) {
    case Response::Type::kData: type = "DATA"; break;
    case Response::Type::kFlags: type = "FLAGS"; break;
    case Response::Type::kSyncDone: type = "SYNC"; break;
    case Response::Type::kError: type = "ERROR"; break;
  }
  std::snprintf(buf, sizeof buf,
                "%s seq=%u.%u code=0x%02x payload=0x%llx", type, r.seq,
                r.burst, r.code, static_cast<unsigned long long>(r.payload));
  return buf;
}

}  // namespace fpgafu::msg
