#pragma once

#include <cstddef>
#include <string>

#include "msg/response.hpp"
#include "sim/component.hpp"
#include "sim/handshake.hpp"
#include "util/ring_buffer.hpp"

namespace fpgafu::msg {

/// Final pipeline stage (paper §III): "the signal vector is converted to the
/// form required by the communication port to the host, and is transmitted
/// on the port" — splits each Response into its three link words and feeds
/// them to the transceiver at whatever rate the link accepts.
class MessageSerializer : public sim::Component {
 public:
  MessageSerializer(sim::Simulator& sim, std::string name,
                    std::size_t depth = 4);

  sim::Handshake<Response> in;             ///< from the message encoder
  sim::Handshake<LinkWord>* out = nullptr; ///< bound to Link::tx

  void bind(sim::Handshake<LinkWord>& link_tx) { out = &link_tx; }

  void eval() override;
  void commit() override;
  void reset() override;

  /// Link words still waiting for the transceiver.
  std::size_t pending_words() const { return pending_.size(); }

 private:
  RingBuffer<LinkWord> pending_;
};

}  // namespace fpgafu::msg
