#pragma once

#include <cstdint>
#include <string>

#include "msg/link.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace fpgafu::msg {

/// Per-direction fault rates.  Rates are in parts-per-million per word so
/// integer arithmetic stays exact; `jitter_max` is the largest extra flight
/// latency (cycles) added uniformly at random to each word.
struct FaultRates {
  std::uint32_t drop_ppm = 0;
  std::uint32_t corrupt_ppm = 0;
  std::uint32_t duplicate_ppm = 0;
  std::uint32_t jitter_max = 0;
};

/// Seeded configuration for a FaultyLink.  The default (all rates zero)
/// behaves bit- and cycle-identically to the plain Link, which is what the
/// differential tests pin down.
struct FaultConfig {
  std::uint64_t seed = 0x5eedULL;
  FaultRates down;  ///< host -> FPGA
  FaultRates up;    ///< FPGA -> host
};

/// A Link that deterministically injects word-level transport faults:
/// drops, single-bit corruption, duplication, and latency jitter, each
/// independently configurable per direction.  All randomness comes from one
/// seeded generator, so a given (seed, traffic) pair always produces the
/// same fault pattern — soak failures replay exactly.
///
/// Fault precedence per word: drop, else corrupt, else duplicate; jitter is
/// independent.  Disabled fault classes draw no random numbers, so enabling
/// one class does not perturb the pattern of another.
class FaultyLink : public Link {
 public:
  FaultyLink(sim::Simulator& sim, std::string name, LinkTiming down_timing,
             LinkTiming up_timing, FaultConfig fault_config,
             std::size_t down_capacity = 0, std::size_t up_capacity = 0);

  const FaultConfig& fault_config() const { return config_; }

  /// Injection statistics: link.{down,up}_{dropped,corrupted,duplicated}.
  const sim::Counters& fault_counters() const { return counters_; }

  void reset() override;

 protected:
  Injection classify(bool downstream, LinkWord& word) override;

 private:
  FaultConfig config_;
  Xoshiro256 rng_;
  sim::Counters counters_;
  sim::Counters::Handle dropped_[2];
  sim::Counters::Handle corrupted_[2];
  sim::Counters::Handle duplicated_[2];
};

}  // namespace fpgafu::msg
