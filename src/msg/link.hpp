#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "msg/response.hpp"
#include "sim/component.hpp"
#include "sim/handshake.hpp"

namespace fpgafu::msg {

/// Timing of one link direction.
///
/// `latency` is the flight time of a word in cycles; `interval` is the
/// minimum number of cycles between successive word transfers (1 = a word
/// every cycle).  A slow serial prototyping-board connection is a large
/// interval; a tightly integrated FPGA/CPU fabric is latency ~1, interval 1.
struct LinkTiming {
  std::uint32_t latency = 1;
  std::uint32_t interval = 1;
};

/// Named timing presets used across benchmarks and examples.
struct LinkPreset {
  const char* name;
  LinkTiming timing;
};

/// Tightly coupled fabric (paper: "there are FPGAs that are tightly
/// integrated with processors, offering extremely high transfer rates").
inline constexpr LinkPreset kTightLink{"tight", {1, 1}};
/// Burst-oriented bus (PCIe-like: high latency, full throughput).
inline constexpr LinkPreset kBurstLink{"burst", {64, 1}};
/// Slow serial prototyping-board connection (the paper's actual testbed:
/// "only a very slow connection from the FPGA board to the processor was
/// available").
inline constexpr LinkPreset kSerialLink{"serial", {4, 32}};

/// The interface circuitry: a full-duplex transceiver between the host CPU
/// (software side, called between simulation steps) and the FPGA-side
/// message buffer / serialiser (handshaked wire ports).
///
/// The paper treats this block as replaceable COTS IP; here it is a single
/// parameterised model whose timing spans the spectrum the paper discusses.
class Link : public sim::Component {
 public:
  Link(sim::Simulator& sim, std::string name, LinkTiming down_timing,
       LinkTiming up_timing);

  /// FPGA-side ports.
  sim::Handshake<LinkWord> rx;  ///< link -> message buffer (downstream data)
  sim::Handshake<LinkWord> tx;  ///< message serialiser -> link (upstream)

  /// Host-side software API -------------------------------------------------
  /// Queue a word for transmission to the FPGA (host buffers are unbounded:
  /// the host is a general-purpose machine with plenty of memory).
  void host_send(LinkWord word);

  /// Pop the next word that has *arrived* at the host (flight time elapsed).
  std::optional<LinkWord> host_receive();

  /// Words currently arrived and waiting at the host.
  std::size_t host_available() const;

  /// True when no word is in flight or queued in either direction.
  bool drained() const;

  /// Total words moved in each direction (for bandwidth accounting).
  std::uint64_t words_down() const { return words_down_; }
  std::uint64_t words_up() const { return words_up_; }

  void eval() override;
  void commit() override;
  void reset() override;

 private:
  struct InFlight {
    LinkWord word;
    std::uint64_t arrives_at;
  };

  LinkTiming down_;
  LinkTiming up_;
  std::deque<InFlight> down_queue_;  ///< host -> FPGA
  std::deque<InFlight> up_queue_;    ///< FPGA -> host
  std::uint64_t down_next_slot_ = 0;  ///< earliest cycle the next word may depart
  std::uint64_t up_next_slot_ = 0;
  std::uint64_t words_down_ = 0;
  std::uint64_t words_up_ = 0;
};

}  // namespace fpgafu::msg
