#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "msg/response.hpp"
#include "sim/component.hpp"
#include "sim/handshake.hpp"

namespace fpgafu::msg {

/// Timing of one link direction.
///
/// `latency` is the flight time of a word in cycles; `interval` is the
/// minimum number of cycles between successive word transfers (1 = a word
/// every cycle).  A slow serial prototyping-board connection is a large
/// interval; a tightly integrated FPGA/CPU fabric is latency ~1, interval 1.
struct LinkTiming {
  std::uint32_t latency = 1;
  std::uint32_t interval = 1;
};

/// Named timing presets used across benchmarks and examples.
struct LinkPreset {
  const char* name;
  LinkTiming timing;
};

/// Tightly coupled fabric (paper: "there are FPGAs that are tightly
/// integrated with processors, offering extremely high transfer rates").
inline constexpr LinkPreset kTightLink{"tight", {1, 1}};
/// Burst-oriented bus (PCIe-like: high latency, full throughput).
inline constexpr LinkPreset kBurstLink{"burst", {64, 1}};
/// Slow serial prototyping-board connection (the paper's actual testbed:
/// "only a very slow connection from the FPGA board to the processor was
/// available").
inline constexpr LinkPreset kSerialLink{"serial", {4, 32}};

/// The interface circuitry: a full-duplex transceiver between the host CPU
/// (software side, called between simulation steps) and the FPGA-side
/// message buffer / serialiser (handshaked wire ports).
///
/// The paper treats this block as replaceable COTS IP; here it is a single
/// parameterised model whose timing spans the spectrum the paper discusses.
/// Both directions may carry bounded transfer buffers (`down_capacity` /
/// `up_capacity`, 0 = unbounded): a full downstream buffer rejects
/// `host_send` (the host must retry), a full upstream buffer deasserts
/// `tx.ready` so backpressure propagates into the serialiser.
///
/// Subclasses can override `classify()` to perturb words in flight (see
/// `FaultyLink`); the base link never faults.
class Link : public sim::Component {
 public:
  Link(sim::Simulator& sim, std::string name, LinkTiming down_timing,
       LinkTiming up_timing, std::size_t down_capacity = 0,
       std::size_t up_capacity = 0);
  ~Link() override = default;

  /// FPGA-side ports.
  sim::Handshake<LinkWord> rx;  ///< link -> message buffer (downstream data)
  sim::Handshake<LinkWord> tx;  ///< message serialiser -> link (upstream)

  /// Host-side software API -------------------------------------------------
  /// Queue a word for transmission to the FPGA.  Returns false (and queues
  /// nothing) when the bounded downstream buffer is full; the caller must
  /// step the simulation and retry.
  bool host_send(LinkWord word);

  /// Downstream buffer slots currently free (SIZE_MAX when unbounded).
  std::size_t host_space() const;

  /// True when `host_send` would accept a word right now.
  bool host_ready() const { return host_space() > 0; }

  /// Pop the next word that has *arrived* at the host (flight time elapsed).
  std::optional<LinkWord> host_receive();

  /// Words currently arrived and waiting at the host.
  std::size_t host_available() const;

  /// True when no word is in flight or queued in either direction.
  bool drained() const;

  /// Diagnostic/test hook: make `word` appear on the host's receive side
  /// this cycle, as if the FPGA had sent it (used to forge frames in
  /// fault-handling tests).
  void inject_upstream(LinkWord word);

  /// Total words moved in each direction (for bandwidth accounting).
  std::uint64_t words_down() const { return words_down_; }
  std::uint64_t words_up() const { return words_up_; }
  /// host_send calls rejected by a full downstream buffer.
  std::uint64_t send_rejects() const { return send_rejects_; }

  void eval() override;
  void commit() override;
  void reset() override;

 protected:
  /// Verdict for one word crossing the link, produced by `classify`.
  /// `drop` discards the word (it still consumes its departure slot, so a
  /// never-faulting subclass is cycle-identical to the base link);
  /// `duplicate` sends the word twice back to back; `extra_latency` delays
  /// arrival (arrival order stays FIFO — jitter never reorders).
  struct Injection {
    bool drop = false;
    bool duplicate = false;
    std::uint32_t extra_latency = 0;
  };

  /// Fault-injection hook, called once per word as it enters the given
  /// direction (`downstream` true = host -> FPGA).  May rewrite `word` in
  /// place (bit corruption).  The base link never injects anything.
  virtual Injection classify(bool downstream, LinkWord& word) {
    (void)downstream;
    (void)word;
    return {};
  }

 private:
  struct InFlight {
    LinkWord word;
    std::uint64_t arrives_at;
  };

  /// Append with a monotonic arrival clamp so per-word jitter cannot
  /// reorder the FIFO.
  static void enqueue(std::deque<InFlight>& queue, LinkWord word,
                      std::uint64_t arrives_at);

  LinkTiming down_;
  LinkTiming up_;
  std::size_t down_capacity_;  ///< 0 = unbounded
  std::size_t up_capacity_;    ///< 0 = unbounded
  std::deque<InFlight> down_queue_;  ///< host -> FPGA
  std::deque<InFlight> up_queue_;    ///< FPGA -> host
  std::uint64_t down_next_slot_ = 0;  ///< earliest cycle the next word may depart
  std::uint64_t up_next_slot_ = 0;
  std::uint64_t words_down_ = 0;
  std::uint64_t words_up_ = 0;
  std::uint64_t send_rejects_ = 0;
};

}  // namespace fpgafu::msg
