// The round trip back to hardware: explore a configuration in the
// simulator, then emit the matching VHDL artefacts for synthesis — the
// paper's actual deliverable ("a generic controller circuit defined in
// VHDL that can be configured by the user").

#include <cstdio>
#include <fstream>

#include "codegen/vhdl.hpp"
#include "host/coprocessor.hpp"
#include "isa/assembler.hpp"
#include "top/system.hpp"

int main() {
  using namespace fpgafu;

  // 1. Choose and validate a configuration in simulation.
  top::SystemConfig config;
  config.rtm.word_width = 32;
  config.rtm.data_regs = 32;
  config.rtm.flag_regs = 8;
  config.stateless_skeleton = fu::Skeleton::kPipelined;
  top::System system(config);
  host::Coprocessor copro(system);
  const auto responses = copro.call(isa::Assembler::assemble(R"(
    PUT r1, #21
    PUT r2, #2
    MUL r3, r1, r2
    GET r3
  )"));
  std::printf("simulation check: 21 * 2 = %llu\n",
              static_cast<unsigned long long>(responses[0].payload));

  // 2. Emit the VHDL starting points for the same configuration.
  {
    std::ofstream os("fpgafu_config.vhd");
    os << codegen::rtm_generics_package(config.rtm);
  }
  {
    std::ofstream os("arith_unit.vhd");
    fu::StatelessConfig ucfg;
    ucfg.width = config.rtm.word_width;
    ucfg.skeleton = config.stateless_skeleton;
    os << codegen::functional_unit_entity("arith_unit", ucfg);
  }
  {
    std::ofstream os("xsort_cell.vhd");
    os << codegen::xsort_cell_entity({.cells = 64, .interval_bits = 16});
  }
  std::printf("wrote fpgafu_config.vhd, arith_unit.vhd, xsort_cell.vhd\n");

  // Show a taste of the output.
  std::printf("\n--- fpgafu_config.vhd -------------------------------\n%s",
              codegen::rtm_generics_package(config.rtm).c_str());
  return 0;
}
