// The stateful case study end to end: χ-sort on the SIMD cell array,
// driven through the complete system path (host driver -> link -> RTM ->
// χ-sort unit), with the paper's hardware/software comparison.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "host/xsort_system_engine.hpp"
#include "util/rng.hpp"
#include "xsort/algorithm.hpp"
#include "xsort/baseline.hpp"
#include "xsort/soft_engine.hpp"

int main() {
  using namespace fpgafu;

  constexpr std::size_t kN = 64;

  // FPGA side: RTM + χ-sort unit with a 64-cell array.
  top::SystemConfig config;
  config.with_xsort = true;
  config.xsort.cells = kN;
  config.xsort.interval_bits = 16;
  top::System system(config);

  host::SystemXsortEngine hw(system);
  xsort::XsortAlgorithm algo(hw);

  Xoshiro256 rng(42);
  std::vector<std::uint64_t> values(kN);
  for (auto& v : values) {
    v = rng.below(1000);
  }

  // --- Sort on the coprocessor --------------------------------------------
  hw.reset_cost();
  const auto sorted = algo.sort(values);
  const std::uint64_t hw_cycles = hw.cost_cycles();

  auto expect = values;
  std::sort(expect.begin(), expect.end());
  if (sorted != expect) {
    std::printf("SORT MISMATCH\n");
    return 1;
  }
  std::printf("chi-sort of %zu values: OK\n", kN);
  std::printf("  refinement rounds : %llu\n",
              static_cast<unsigned long long>(algo.stats().rounds));
  std::printf("  coprocessor ops   : %llu\n",
              static_cast<unsigned long long>(algo.stats().ops));
  std::printf("  simulated cycles  : %llu (%.1f us at %.0f MHz)\n",
              static_cast<unsigned long long>(hw_cycles),
              system.cycles_to_us(hw_cycles), system.config().clock_mhz);

  // --- The software comparison (Θ(n) per operation) ------------------------
  xsort::SoftXsortEngine soft({.cells = kN, .interval_bits = 16});
  xsort::XsortAlgorithm soft_algo(soft);
  soft.reset_cost();
  soft_algo.sort(values);
  std::printf("software emulation of the same ops: %llu modelled CPU cycles\n",
              static_cast<unsigned long long>(soft.cost_cycles()));

  // --- Selection: k-th smallest in expected O(log n) rounds ----------------
  top::System sys2(config);
  host::SystemXsortEngine hw2(sys2);
  xsort::XsortAlgorithm sel(hw2);
  sel.load(values);
  const std::uint64_t median = sel.select(kN / 2);
  std::printf("selection: median = %llu (reference %llu), %llu rounds\n",
              static_cast<unsigned long long>(median),
              static_cast<unsigned long long>(
                  xsort::cpu_select(values, kN / 2)),
              static_cast<unsigned long long>(sel.stats().rounds));
  return median == xsort::cpu_select(values, kN / 2) ? 0 : 1;
}
