// Offloading a batch of programs to a multi-System coprocessor farm.
//
// Where examples/multi_cpu.cpp time-multiplexes two CPUs onto *one* shared
// fabric, host::Farm scales the other axis: N independent System shards,
// each owned by one worker thread, behind a single submit() queue.  The
// caller never touches a simulator clock — workers pump their own shards —
// so submission looks like an ordinary thread-pool API returning futures.
//
// Three usage modes are shown:
//   1. Stateless batch: self-contained programs scattered round-robin
//      across shards, results cross-checked against host::ReferenceModel.
//   2. Sticky sessions: a session pins all its jobs to one shard, so
//      register state written by one call is visible to the next.
//   3. Windowed async polling: transport.window > 1 keeps several jobs in
//      flight per shard, and submit_async delivers completions via
//      callback on the worker thread — no caller parked in future::get.

#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "host/farm.hpp"
#include "host/reference_model.hpp"
#include "isa/assembler.hpp"

namespace {

using namespace fpgafu;

/// A self-contained job: writes every register it reads, so it computes the
/// same responses no matter which shard (with whatever leftover register
/// state) runs it.
isa::Program dot3_program(std::uint32_t a0, std::uint32_t a1, std::uint32_t a2,
                          std::uint32_t b0, std::uint32_t b1,
                          std::uint32_t b2) {
  std::string src;
  const std::uint32_t a[3] = {a0, a1, a2};
  const std::uint32_t b[3] = {b0, b1, b2};
  for (int i = 0; i < 3; ++i) {
    src += "PUT r" + std::to_string(1 + i) + ", #" + std::to_string(a[i]) +
           "\n";
    src += "PUT r" + std::to_string(4 + i) + ", #" + std::to_string(b[i]) +
           "\n";
  }
  src +=
      "MUL r7, r1, r4\n"
      "MUL r8, r2, r5\n"
      "MUL r9, r3, r6\n"
      "ADD r7, r7, r8\n"
      "ADD r7, r7, r9\n"
      "GET r7\n";
  return isa::Assembler::assemble(src);
}

}  // namespace

int main() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  host::FarmConfig config;
  config.shards = hw < 4 ? hw : 4;
  // Pipelined issue: each shard keeps up to 8 jobs in flight on its wire
  // instead of one call-and-wait round trip at a time (read-leading jobs
  // overlap a predecessor's return-link tail; see docs/FARM.md).
  config.transport.window = 8;
  host::Farm farm(config);
  std::printf("farm: %zu shards (hardware_concurrency = %u)\n",
              farm.shard_count(), hw);

  // --- Mode 1: stateless batch, scattered round-robin ------------------
  std::vector<isa::Program> jobs;
  std::vector<std::future<std::vector<msg::Response>>> futures;
  for (std::uint32_t k = 0; k < 16; ++k) {
    jobs.push_back(dot3_program(k + 1, k + 2, k + 3, 7, 11, 13));
    futures.push_back(farm.submit(jobs.back()));
  }

  std::size_t verified = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto got = futures[i].get();
    // A fresh reference model per job: farm jobs are self-contained, so
    // each is checkable against a clean-slate oracle.
    const auto want = host::ReferenceModel(top::SystemConfig{}.rtm).run(jobs[i]);
    if (got == want) {
      ++verified;
    } else {
      std::printf("job %zu diverged from the reference model!\n", i);
    }
  }
  std::printf("batch: %zu/%zu jobs verified against ReferenceModel\n",
              verified, futures.size());

  // --- Mode 2: sticky session accumulating state on one shard ----------
  const host::Farm::SessionId session = farm.create_session();
  farm.submit(session, isa::Assembler::assemble("PUT r1, #0")).get();
  for (std::uint32_t i = 1; i <= 100; ++i) {
    farm.submit(session, isa::Assembler::assemble(
                             "PUT r2, #" + std::to_string(i) +
                             "\nADD r1, r1, r2"))
        .get();
  }
  const auto sum =
      farm.submit(session, isa::Assembler::assemble("GET r1")).get();
  std::printf("session on shard %zu: sum(1..100) = %llu (expected 5050)\n",
              farm.shard_of(session),
              static_cast<unsigned long long>(sum.at(0).payload));

  // --- Mode 3: windowed async polling of the session's result ----------
  // 64 two-GET status polls stream through the shard's pipelined window;
  // the callback runs on the worker thread, so the main thread blocks
  // exactly once (on the last completion) instead of once per poll.
  const isa::Program poll = isa::Assembler::assemble("GET r1\nGET r1");
  std::mutex m;
  std::condition_variable cv;
  std::size_t polled = 0, poll_ok = 0;
  constexpr std::size_t kPolls = 64;
  for (std::size_t i = 0; i < kPolls; ++i) {
    farm.submit_async(
        session, poll,
        [&](std::vector<msg::Response> rs, std::exception_ptr err) {
          std::lock_guard<std::mutex> lk(m);
          if (!err && rs.size() == 2 && rs[0].payload == 5050) {
            ++poll_ok;
          }
          if (++polled == kPolls) {
            cv.notify_one();
          }
        });
  }
  {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return polled == kPolls; });
  }
  std::printf("async: %zu/%zu windowed polls returned 5050\n", poll_ok,
              kPolls);

  farm.shutdown();
  const sim::Counters totals = farm.counters();
  std::printf("fleet counters: jobs_completed=%llu jobs_failed=%llu\n",
              static_cast<unsigned long long>(
                  totals.get("farm.jobs_completed")),
              static_cast<unsigned long long>(totals.get("farm.jobs_failed")));
  return (verified == futures.size() && sum.at(0).payload == 5050 &&
          poll_ok == kPolls)
             ? 0
             : 1;
}
