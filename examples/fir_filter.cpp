// A 5-tap FIR filter compiled to the coprocessor with the expression
// compiler: the host builds y[n] = sum(h[k] * x[n-k]) as an expression DAG
// once; every sample evaluation reuses the compiled program with fresh
// input bindings.  Fixed-point Q16.16 arithmetic on the integer units
// (MUL + shifts + ADDs), verified against a host-side reference.

#include <cstdio>
#include <vector>

#include "host/coprocessor.hpp"
#include "host/expr.hpp"
#include "top/system.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpgafu;

constexpr int kTaps = 5;
// Simple low-pass kernel in Q16.16: [1, 4, 6, 4, 1] / 16.
const std::uint64_t kH[kTaps] = {0x1000, 0x4000, 0x6000, 0x4000, 0x1000};

}  // namespace

int main() {
  top::SystemConfig config;
  top::System system(config);
  host::Coprocessor copro(system);

  // Build the filter expression once: inputs x0..x4 are the delay line.
  using host::Expr;
  Expr acc = Expr::constant(0);
  for (int k = 0; k < kTaps; ++k) {
    const Expr tap = Expr::input("x" + std::to_string(k)) *
                     Expr::constant(kH[static_cast<std::size_t>(k)]);
    // Product of two Q16.16 values is Q32.32; renormalise to Q16.16.
    acc = acc + (tap >> Expr::constant(16));
  }
  const host::ExprCompiler compiler(system.rtm().config());
  const host::CompiledExpr filter = compiler.compile(acc);
  std::printf("compiled FIR: %zu operations, %zu registers\n",
              filter.operation_count(), filter.registers_used());

  // Drive a noisy step signal through it.
  Xoshiro256 rng(99);
  constexpr int kSamples = 64;
  std::vector<std::uint64_t> x(kSamples);
  for (int n = 0; n < kSamples; ++n) {
    const std::uint64_t step = n < kSamples / 2 ? 0x10000 : 0x30000;
    x[static_cast<std::size_t>(n)] =
        step + rng.below(0x4000);  // Q16.16 with additive noise
  }

  int mismatches = 0;
  for (int n = kTaps - 1; n < kSamples; ++n) {
    std::map<std::string, isa::Word> bind;
    std::uint64_t expect = 0;
    for (int k = 0; k < kTaps; ++k) {
      const std::uint64_t xv = x[static_cast<std::size_t>(n - k)];
      bind["x" + std::to_string(k)] = xv;
      expect = (expect +
                (((xv * kH[static_cast<std::size_t>(k)]) & 0xffffffffu) >>
                 16)) &
               0xffffffffu;
    }
    const isa::Word got = filter.run(copro, bind);
    if (got != expect) {
      ++mismatches;
      if (mismatches <= 3) {
        std::printf("MISMATCH at n=%d: got 0x%llx want 0x%llx\n", n,
                    static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(expect));
      }
    }
  }

  std::printf("filtered %d samples on the coprocessor: %s\n",
              kSamples - kTaps + 1,
              mismatches == 0 ? "all match the host reference" : "MISMATCH");
  std::printf("simulated cycles: %llu (%.1f us at %.0f MHz)\n",
              static_cast<unsigned long long>(system.simulator().cycle()),
              system.cycles_to_us(system.simulator().cycle()),
              system.config().clock_mhz);
  return mismatches == 0 ? 0 : 1;
}
