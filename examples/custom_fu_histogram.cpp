// Developing an application (paper §IV): a user-defined *stateful*
// functional unit.  The paper names "histogram calculators" as a canonical
// stateful unit; this example implements one against the framework's
// standard signal protocol, attaches it under a user function code, and
// drives it from the host.
//
// This is the complete recipe a framework user follows:
//   1. derive from fu::FunctionalUnit and implement eval()/commit() against
//      the dispatch/idle/data_ready/data_acknowledge protocol;
//   2. attach it to the System under a function code >= isa::fc::kUserBase;
//   3. issue instructions with that function code from the host.

#include <cstdio>
#include <vector>

#include "host/coprocessor.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpgafu;

/// Histogram unit: 16 bins of persistent state.
/// Variety codes: 0 = clear all bins; 1 = insert operand1 (bin = value
/// mod 16); 2 = read bin[operand1]; 3 = read total insert count.
class HistogramUnit : public fu::FunctionalUnit {
 public:
  HistogramUnit(sim::Simulator& sim) : FunctionalUnit(sim, "histogram") {}

  static constexpr isa::VarietyCode kClear = 0;
  static constexpr isa::VarietyCode kInsert = 1;
  static constexpr isa::VarietyCode kReadBin = 2;
  static constexpr isa::VarietyCode kTotal = 3;

  void eval() override {
    ports.idle.set(!pending_);
    ports.data_ready.set(pending_);
    ports.result.set(out_);
  }

  void commit() override {
    if (pending_ && ports.data_acknowledge.get()) {
      pending_ = false;
      ++completed_;
      // All state here lives in plain members the simulator cannot watch:
      // self-report the activity so the event kernel keeps us scheduled.
      mark_active();
    }
    if (ports.dispatch.get() && !pending_) {
      const fu::FuRequest req = ports.request.get();
      isa::Word result = 0;
      switch (req.variety) {
        case kClear:
          bins_.assign(bins_.size(), 0);
          total_ = 0;
          break;
        case kInsert:
          ++bins_[req.operand1 % bins_.size()];
          ++total_;
          result = total_;
          break;
        case kReadBin:
          result = bins_[req.operand1 % bins_.size()];
          break;
        case kTotal:
        default:
          result = total_;
          break;
      }
      out_.data = result;
      out_.flags = result == 0 ? isa::FlagWord{1} << isa::flag::kZero
                               : isa::FlagWord{0};
      out_.dst_reg = req.dst_reg;
      out_.dst_flag_reg = req.dst_flag_reg;
      out_.write_data = true;
      out_.write_flags = true;
      pending_ = true;
      mark_active();
    }
  }

  void reset() override {
    FunctionalUnit::reset();
    bins_.assign(bins_.size(), 0);
    total_ = 0;
    pending_ = false;
  }

 private:
  std::vector<std::uint64_t> bins_ = std::vector<std::uint64_t>(16, 0);
  std::uint64_t total_ = 0;
  bool pending_ = false;
  fu::FuResult out_;
};

constexpr isa::FunctionCode kHistogramCode = isa::fc::kUserBase + 1;

isa::Instruction histogram_op(isa::VarietyCode variety, isa::RegNum src,
                              isa::RegNum dst) {
  isa::Instruction inst;
  inst.function = kHistogramCode;
  inst.variety = variety;
  inst.src1 = src;
  inst.dst1 = dst;
  return inst;
}

}  // namespace

int main() {
  top::SystemConfig config;
  top::System system(config);
  HistogramUnit histogram(system.simulator());
  system.attach(kHistogramCode, histogram);
  host::Coprocessor copro(system);

  // Feed 500 random values; keep the host-side truth for the check.
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> truth(16, 0);
  isa::Program feed;
  feed.emit(histogram_op(HistogramUnit::kClear, 0, 1));
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.below(1000);
    ++truth[v % 16];
    feed.emit_put(1, v);
    feed.emit(histogram_op(HistogramUnit::kInsert, 1, 2));
  }
  copro.submit(feed);
  copro.sync();

  // Read the bins back through the register file.
  bool ok = true;
  std::printf("bin  count  expected\n");
  for (isa::RegNum bin = 0; bin < 16; ++bin) {
    isa::Program read;
    read.emit_put(1, bin);
    read.emit(histogram_op(HistogramUnit::kReadBin, 1, 2));
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = 2;
    read.emit(get);
    const auto responses = copro.call(read);
    const std::uint64_t count = responses.front().payload;
    std::printf("%3u  %5llu  %8llu\n", bin,
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(truth[bin]));
    ok = ok && count == truth[bin];
  }
  std::printf(ok ? "histogram matches the host-side truth.\n"
                 : "HISTOGRAM MISMATCH\n");
  return ok ? 0 : 1;
}
