// Multiple host CPUs sharing one coprocessor (paper Fig. 1: "one or more
// CPUs communicate via the interface with a set of functional units").
//
// Two sessions issue independent work streams; the multiplexer interleaves
// their instructions onto the shared link and routes each response back to
// its issuing session.  Sessions partition the register file between
// themselves, as threads partition memory.

#include <cstdio>
#include <vector>

#include "host/multi_host.hpp"
#include "isa/arith.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"

namespace {

using namespace fpgafu;

/// A "CPU" computing the sum 1..limit via coprocessor ADDs, using the
/// register window [base, base+2].
isa::Program sum_program(isa::RegNum base, int limit) {
  isa::Program p;
  p.emit_put(base, 0);  // accumulator
  for (int i = 1; i <= limit; ++i) {
    p.emit_put(static_cast<isa::RegNum>(base + 1), static_cast<isa::Word>(i));
    isa::Instruction add;
    add.function = isa::fc::kArith;
    add.variety = isa::arith::variety(isa::arith::Op::kAdd);
    add.dst1 = base;
    add.src1 = base;
    add.src2 = static_cast<isa::RegNum>(base + 1);
    p.emit(add);
  }
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = base;
  p.emit(get);
  return p;
}

}  // namespace

int main() {
  top::SystemConfig config;
  config.rtm.data_regs = 32;
  top::System system(config);
  host::MultiHost mux(system);

  auto& cpu0 = mux.create_session();
  auto& cpu1 = mux.create_session();

  // CPU 0 sums 1..100 in registers r1..r3; CPU 1 sums 1..200 in r10..r12.
  cpu0.submit(sum_program(/*base=*/1, /*limit=*/100));
  cpu1.submit(sum_program(/*base=*/10, /*limit=*/200));

  std::optional<msg::Response> r0, r1;
  system.simulator().run_until(
      [&] {
        mux.pump();
        if (!r0) r0 = cpu0.poll();
        if (!r1) r1 = cpu1.poll();
        return r0.has_value() && r1.has_value();
      },
      1'000'000);

  std::printf("CPU0: sum(1..100) = %llu (expected 5050)\n",
              static_cast<unsigned long long>(r0->payload));
  std::printf("CPU1: sum(1..200) = %llu (expected 20100)\n",
              static_cast<unsigned long long>(r1->payload));
  std::printf("shared-link cycles: %llu\n",
              static_cast<unsigned long long>(system.simulator().cycle()));
  return (r0->payload == 5050 && r1->payload == 20100) ? 0 : 1;
}
