// SAXPY on the coprocessor's floating-point unit: y[i] = a*x[i] + y[i].
//
// The paper's motivating use case is exactly this: "one example ... is to
// provide floating point operations in hardware, rather than performing
// them in software."  The host streams vector elements through the FPGA's
// IEEE-754 unit and reads the results back, double-checking every element
// against the host FPU — the coprocessor's soft-float datapath is
// bit-exact.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "host/coprocessor.hpp"
#include "isa/assembler.hpp"
#include "top/system.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpgafu;

std::uint32_t f2u(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, 4);
  return u;
}
float u2f(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, 4);
  return f;
}

}  // namespace

int main() {
  constexpr int kN = 256;
  const float a = 2.5f;

  Xoshiro256 rng(314);
  std::vector<float> x(kN), y(kN);
  for (int i = 0; i < kN; ++i) {
    x[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.below(1000)) / 7.0f - 50.0f;
    y[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.below(1000)) / 3.0f - 150.0f;
  }

  top::SystemConfig config;
  // A pipelined float unit: SAXPY streams, so throughput matters.
  config.stateless_skeleton = fu::Skeleton::kPipelined;
  top::System system(config);
  host::Coprocessor copro(system);

  // The scale factor lives in r1 for the whole run.
  copro.write_reg(1, f2u(a));

  // Stream: for each element, PUT x and y, FMUL t = a*x, FADD y' = t + y,
  // GET y'.  (A real deployment would batch; this keeps the example flat.)
  isa::Program p;
  for (int i = 0; i < kN; ++i) {
    p.emit_put(2, f2u(x[static_cast<std::size_t>(i)]));
    p.emit_put(3, f2u(y[static_cast<std::size_t>(i)]));
    isa::Assembler::assemble_line("FMUL r4, r1, r2", p);
    isa::Assembler::assemble_line("FADD r5, r4, r3", p);
    isa::Assembler::assemble_line("GET r5", p);
  }
  const auto responses = copro.call(p);

  int mismatches = 0;
  for (int i = 0; i < kN; ++i) {
    const float got =
        u2f(static_cast<std::uint32_t>(responses[static_cast<std::size_t>(i)]
                                           .payload));
    const float want = a * x[static_cast<std::size_t>(i)] +
                       y[static_cast<std::size_t>(i)];
    if (f2u(got) != f2u(want)) {
      ++mismatches;
      if (mismatches <= 3) {
        std::printf("MISMATCH at %d: got %.9g want %.9g\n", i, got, want);
      }
    }
  }

  const auto cycles = system.simulator().cycle();
  std::printf("saxpy of %d elements on the FPGA float unit: %s\n", kN,
              mismatches == 0 ? "bit-exact vs host FPU" : "MISMATCHES");
  std::printf("simulated cycles: %llu (%.1f us at %.0f MHz, %.2f cycles/elem)\n",
              static_cast<unsigned long long>(cycles),
              system.cycles_to_us(cycles), system.config().clock_mhz,
              static_cast<double>(cycles) / kN);
  return mismatches == 0 ? 0 : 1;
}
