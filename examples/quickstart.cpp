// Quickstart: build a coprocessor system, offload a few arithmetic
// operations, and read the results back — the complete life of an
// accelerated call in ~40 lines.
//
// The flow is the paper's Figure 1: the "main program" (this file) runs on
// the host CPU; the interface (RTM) and the functional units live on the
// simulated FPGA; they talk over a transceiver link.

#include <cstdio>

#include "host/coprocessor.hpp"
#include "isa/assembler.hpp"
#include "top/system.hpp"

int main() {
  using namespace fpgafu;

  // 1. Configure the FPGA side: a 32-bit RTM with the thesis' stateless
  //    case-study units (arithmetic, logic, shift), tightly linked.
  top::SystemConfig config;
  config.rtm.word_width = 32;
  config.rtm.data_regs = 32;
  top::System system(config);

  // 2. The host driver.
  host::Coprocessor copro(system);

  // 3. Write a small RTM program.  PUT loads operands into coprocessor
  //    registers, the ADD/SUB/AND instructions dispatch to functional
  //    units, GET returns results to the host.
  const isa::Program program = isa::Assembler::assemble(R"(
    PUT r1, #1234
    PUT r2, #4321
    ADD r3, r1, r2, f1    ; r3 = r1 + r2, flags to f1
    SUB r4, r2, r1        ; r4 = r2 - r1
    AND r5, r1, r2        ; r5 = r1 & r2
    GET r3
    GET r4
    GET r5
    GETF f1
  )");

  // 4. Run it.  call() blocks (advancing the simulated clock) until every
  //    response has crossed the link back to the host.
  const auto responses = copro.call(program);

  std::printf("r1 + r2 = %llu\n",
              static_cast<unsigned long long>(responses[0].payload));
  std::printf("r2 - r1 = %llu\n",
              static_cast<unsigned long long>(responses[1].payload));
  std::printf("r1 & r2 = 0x%llx\n",
              static_cast<unsigned long long>(responses[2].payload));
  std::printf("flags of the ADD = 0x%02x\n", responses[3].code);
  std::printf("simulated FPGA cycles: %llu (= %.2f us at %.0f MHz)\n",
              static_cast<unsigned long long>(system.simulator().cycle()),
              system.cycles_to_us(system.simulator().cycle()),
              system.config().clock_mhz);
  return 0;
}
