// Multi-precision arithmetic on the coprocessor.
//
// The thesis' arithmetic unit supports "multi-word operation ... through an
// externally provided carry bit read from the input carry flag" (§3.2.2).
// This example adds and subtracts 256-bit integers on the 32-bit datapath
// by chaining ADC/SBB through a flag register, verifying each result
// against a host-side reference.

#include <cstdio>
#include <cstring>
#include <vector>

#include "host/coprocessor.hpp"
#include "isa/arith.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpgafu;

constexpr int kLimbs = 8;  // 8 x 32 bits = 256 bits
using BigInt = std::vector<std::uint32_t>;  // little-endian limbs

BigInt random_bigint(Xoshiro256& rng) {
  BigInt v(kLimbs);
  for (auto& limb : v) {
    limb = static_cast<std::uint32_t>(rng.next());
  }
  return v;
}

/// Host-side reference addition/subtraction (mod 2^256).
BigInt ref_addsub(const BigInt& a, const BigInt& b, bool subtract) {
  BigInt out(kLimbs);
  std::uint64_t carry = subtract ? 1 : 0;
  for (int i = 0; i < kLimbs; ++i) {
    const std::uint64_t rhs = subtract ? ~b[static_cast<std::size_t>(i)]
                                       : b[static_cast<std::size_t>(i)];
    const std::uint64_t sum =
        static_cast<std::uint64_t>(a[static_cast<std::size_t>(i)]) +
        (rhs & 0xffffffffu) + carry;
    out[static_cast<std::size_t>(i)] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  return out;
}

/// Emit a chained 256-bit add (or subtract) program.
/// Register map: a limbs in r1..r8, b limbs in r9..r16, result in r17..r24;
/// the running carry lives in flag register f1.
isa::Program bignum_program(const BigInt& a, const BigInt& b, bool subtract) {
  isa::Program p;
  for (int i = 0; i < kLimbs; ++i) {
    p.emit_put(static_cast<isa::RegNum>(1 + i), a[static_cast<std::size_t>(i)]);
    p.emit_put(static_cast<isa::RegNum>(9 + i), b[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < kLimbs; ++i) {
    isa::Instruction inst;
    inst.function = isa::fc::kArith;
    using isa::arith::Op;
    // Limb 0 uses ADD/SUB (sets the carry convention); later limbs chain
    // ADC/SBB through f1.
    const Op op = i == 0 ? (subtract ? Op::kSub : Op::kAdd)
                         : (subtract ? Op::kSbb : Op::kAdc);
    inst.variety = isa::arith::variety(op);
    inst.src1 = static_cast<isa::RegNum>(1 + i);
    inst.src2 = static_cast<isa::RegNum>(9 + i);
    inst.src_flag = 1;
    inst.dst_flag = 1;
    inst.dst1 = static_cast<isa::RegNum>(17 + i);
    p.emit(inst);
  }
  for (int i = 0; i < kLimbs; ++i) {
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = static_cast<isa::RegNum>(17 + i);
    p.emit(get);
  }
  return p;
}

void print_bigint(const char* label, const BigInt& v) {
  std::printf("%s0x", label);
  for (int i = kLimbs; i-- > 0;) {
    std::printf("%08x", v[static_cast<std::size_t>(i)]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  top::SystemConfig config;
  config.rtm.word_width = 32;
  config.rtm.data_regs = 32;
  top::System system(config);
  host::Coprocessor copro(system);

  Xoshiro256 rng(2010);
  int checked = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const BigInt a = random_bigint(rng);
    const BigInt b = random_bigint(rng);
    for (const bool subtract : {false, true}) {
      const auto responses = copro.call(bignum_program(a, b, subtract));
      BigInt got(kLimbs);
      for (int i = 0; i < kLimbs; ++i) {
        got[static_cast<std::size_t>(i)] =
            static_cast<std::uint32_t>(responses[static_cast<std::size_t>(i)]
                                           .payload);
      }
      const BigInt expect = ref_addsub(a, b, subtract);
      if (got != expect) {
        std::printf("MISMATCH (%s):\n", subtract ? "sub" : "add");
        print_bigint("  a      = ", a);
        print_bigint("  b      = ", b);
        print_bigint("  got    = ", got);
        print_bigint("  expect = ", expect);
        return 1;
      }
      ++checked;
    }
  }
  std::printf("256-bit add/sub on the 32-bit coprocessor: %d/%d results "
              "match the host reference.\n",
              checked, checked);
  std::printf("total simulated cycles: %llu\n",
              static_cast<unsigned long long>(system.simulator().cycle()));
  return 0;
}
