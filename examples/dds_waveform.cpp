// Direct digital synthesis on the coprocessor: a numerically controlled
// oscillator generating a sine wave through the CORDIC trigonometric unit
// (the paper's "trigonometric function calculators", §IV-A) — the classic
// FPGA signal-processing workload.
//
// A phase accumulator steps by a binary-angular-measurement increment each
// sample; the coprocessor turns each phase into a Q1.30 sine sample.
// PUTV bursts carry the phases in; samples stream back.  The host checks
// every sample against libm.

#include <cmath>
#include <cstdio>
#include <vector>

#include "host/coprocessor.hpp"
#include "isa/assembler.hpp"
#include "isa/trig.hpp"
#include "top/system.hpp"

int main() {
  using namespace fpgafu;

  constexpr int kSamples = 256;
  // Output frequency: 3 cycles across the 256-sample window.
  constexpr std::uint32_t kPhaseStep = static_cast<std::uint32_t>(
      (3ull << 32) / kSamples);

  top::SystemConfig config;
  top::System system(config);
  host::Coprocessor copro(system);

  std::uint32_t phase = 0;
  std::vector<std::int32_t> samples;
  samples.reserve(kSamples);

  isa::Program p;
  for (int i = 0; i < kSamples; ++i) {
    p.emit_put(1, phase);
    isa::Assembler::assemble_line("SIN r2, r1", p);
    isa::Assembler::assemble_line("GET r2", p);
    phase += kPhaseStep;
  }
  const auto responses = copro.call(p);

  double max_err_lsb = 0.0;
  phase = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto raw = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(responses[static_cast<std::size_t>(i)]
                                       .payload));
    samples.push_back(raw);
    const double expect =
        std::sin(static_cast<double>(phase) / 4294967296.0 *
                 6.283185307179586) *
        1073741824.0;
    max_err_lsb = std::max(max_err_lsb,
                           std::abs(static_cast<double>(raw) - expect));
    phase += kPhaseStep;
  }

  // A rough ASCII scope of the first cycle.
  std::printf("NCO output (first 86 samples of %d, 3 cycles total):\n",
              kSamples);
  for (int row = 6; row >= -6; --row) {
    for (int i = 0; i < 86; i += 2) {
      const int level = static_cast<int>(
          std::lround(static_cast<double>(samples[static_cast<std::size_t>(i)]) /
                      1073741824.0 * 6.0));
      std::putchar(level == row ? '*' : (row == 0 ? '-' : ' '));
    }
    std::putchar('\n');
  }
  std::printf("max CORDIC error: %.1f LSB (Q1.30) across %d samples\n",
              max_err_lsb, kSamples);
  std::printf("simulated cycles: %llu (%.1f us at %.0f MHz)\n",
              static_cast<unsigned long long>(system.simulator().cycle()),
              system.cycles_to_us(system.simulator().cycle()),
              system.config().clock_mhz);
  return max_err_lsb <= 8.0 ? 0 : 1;
}
