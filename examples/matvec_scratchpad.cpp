// Matrix–vector multiply with on-FPGA state: the matrix lives in a
// scratchpad (block-RAM) functional unit, the vector in the register file,
// and the multiply/accumulate runs on the mul/div and arithmetic units —
// a workload that combines a stateful unit with stateless ones, exactly
// the composition the framework is for.

#include <cstdio>
#include <vector>

#include "fu/scratchpad_unit.hpp"
#include "host/coprocessor.hpp"
#include "isa/arith.hpp"
#include "isa/muldiv.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpgafu;

constexpr int kN = 8;
constexpr isa::FunctionCode kScratchpadCode = isa::fc::kUserBase + 2;

isa::Instruction sp_op(isa::VarietyCode v, isa::RegNum addr_reg,
                       isa::RegNum data_reg, isa::RegNum dst) {
  isa::Instruction inst;
  inst.function = kScratchpadCode;
  inst.variety = v;
  inst.src1 = addr_reg;  // operand1 = address
  inst.src2 = data_reg;  // operand2 = data
  inst.dst1 = dst;
  return inst;
}

isa::Instruction alu(isa::FunctionCode f, isa::VarietyCode v, isa::RegNum d,
                     isa::RegNum a, isa::RegNum b) {
  isa::Instruction inst;
  inst.function = f;
  inst.variety = v;
  inst.dst1 = d;
  inst.src1 = a;
  inst.src2 = b;
  return inst;
}

}  // namespace

int main() {
  top::SystemConfig config;
  config.rtm.data_regs = 32;
  top::System system(config);
  fu::ScratchpadUnit scratchpad(system.simulator(), "matrix_ram", kN * kN);
  system.attach(kScratchpadCode, scratchpad);
  host::Coprocessor copro(system);

  // Random matrix A and vector x (small values; 32-bit accumulation).
  Xoshiro256 rng(12);
  std::vector<std::uint64_t> a(kN * kN), x(kN);
  for (auto& v : a) {
    v = rng.below(100);
  }
  for (auto& v : x) {
    v = rng.below(100);
  }

  // Load A into the scratchpad: r1 = address, r2 = value, write.
  isa::Program load;
  for (int i = 0; i < kN * kN; ++i) {
    load.emit_put(1, static_cast<isa::Word>(i));
    load.emit_put(2, a[static_cast<std::size_t>(i)]);
    load.emit(sp_op(fu::ScratchpadUnit::kWrite, 1, 2, 3));
  }
  // Load x into registers r8..r15 with one burst.
  load.emit_put_vec(8, x);
  copro.submit(load);
  copro.sync();

  // y[row] = sum_col A[row*N+col] * x[col]; accumulate in r4.
  // r1 = address, r5 = matrix element, r6 = product.
  isa::Program compute;
  for (int row = 0; row < kN; ++row) {
    isa::Instruction zero;
    zero.function = isa::fc::kRtm;
    zero.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kPutImm);
    zero.dst1 = 4;
    zero.aux = 0;
    compute.emit(zero);
    for (int col = 0; col < kN; ++col) {
      compute.emit_put(1, static_cast<isa::Word>(row * kN + col));
      compute.emit(sp_op(fu::ScratchpadUnit::kRead, 1, 0, 5));
      compute.emit(alu(isa::fc::kMulDiv,
                       isa::muldiv::variety(isa::muldiv::Op::kMul), 6, 5,
                       static_cast<isa::RegNum>(8 + col)));
      compute.emit(alu(isa::fc::kArith,
                       isa::arith::variety(isa::arith::Op::kAdd), 4, 4, 6));
    }
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = 4;
    compute.emit(get);
  }
  const auto responses = copro.call(compute);

  int mismatches = 0;
  for (int row = 0; row < kN; ++row) {
    std::uint64_t expect = 0;
    for (int col = 0; col < kN; ++col) {
      expect += a[static_cast<std::size_t>(row * kN + col)] *
                x[static_cast<std::size_t>(col)];
    }
    const std::uint64_t got = responses[static_cast<std::size_t>(row)].payload;
    std::printf("y[%d] = %6llu  (expect %6llu)%s\n", row,
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(expect),
                got == expect ? "" : "  MISMATCH");
    mismatches += got != expect ? 1 : 0;
  }
  std::printf("%dx%d mat-vec on scratchpad + mul/div + arithmetic units: %s\n",
              kN, kN, mismatches == 0 ? "OK" : "MISMATCH");
  std::printf("simulated cycles: %llu (%.1f us at %.0f MHz)\n",
              static_cast<unsigned long long>(system.simulator().cycle()),
              system.cycles_to_us(system.simulator().cycle()),
              system.config().clock_mhz);
  return mismatches == 0 ? 0 : 1;
}
