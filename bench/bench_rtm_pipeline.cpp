// Experiment E4 (DESIGN.md §5): RTM pipeline behaviour.
//
// Quantifies §III of the paper: pipeline throughput under different
// functional-unit mixes, hazard-induced stalls, out-of-order completion
// with in-order results, and the write-arbiter grant-policy ablation.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "host/coprocessor.hpp"
#include "isa/arith.hpp"
#include "isa/logic.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "isa/shift.hpp"
#include "top/system.hpp"
#include "util/table.hpp"

namespace {

using namespace fpgafu;

/// Burst of `ops` independent ADDs cycling over 8 destination registers,
/// ending with a SYNC.
isa::Program add_burst(int ops) {
  isa::Program p;
  p.emit_put(1, 11);
  p.emit_put(2, 22);
  for (int i = 0; i < ops; ++i) {
    isa::Instruction add;
    add.function = isa::fc::kArith;
    add.variety = isa::arith::variety(isa::arith::Op::kAdd);
    add.dst1 = static_cast<isa::RegNum>(3 + (i % 8));
    add.dst_flag = static_cast<isa::RegNum>(i % 4);
    add.src1 = 1;
    add.src2 = 2;
    p.emit(add);
  }
  isa::Instruction sync;
  sync.function = isa::fc::kRtm;
  sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  p.emit(sync);
  return p;
}

std::uint64_t run_burst(const top::SystemConfig& cfg, const isa::Program& p) {
  top::System sys(cfg);
  host::Coprocessor copro(sys);
  const auto start = sys.simulator().cycle();
  copro.call(p);
  return sys.simulator().cycle() - start;
}

void print_throughput_table() {
  bench::section("E4", "RTM pipeline: cycles per instruction for a burst of "
                       "512 independent ADDs (tight link)");
  TextTable t({"unit skeleton", "total cycles", "cycles/instr"});
  const int ops = 512;
  for (const auto s : {fu::Skeleton::kMinimal, fu::Skeleton::kMinimalFwd,
                       fu::Skeleton::kFsm, fu::Skeleton::kPipelined}) {
    top::SystemConfig cfg;
    cfg.stateless_skeleton = s;
    const std::uint64_t cycles = run_burst(cfg, add_burst(ops));
    const char* name = s == fu::Skeleton::kMinimal      ? "minimal"
                       : s == fu::Skeleton::kMinimalFwd ? "minimal+fwd"
                       : s == fu::Skeleton::kFsm        ? "fsm"
                                                        : "pipelined";
    t.add_row({name, std::to_string(cycles),
               format_fixed(static_cast<double>(cycles) / ops, 3)});
  }
  t.print(std::cout);
  bench::note("The host stream delivers one instruction per 2 link words;");
  bench::note("with a tight link the decoder sees one instruction every 2");
  bench::note("cycles, so ~2.0 cycles/instr means the pipeline never adds a");
  bench::note("stall on top of the link (the unit is not the bottleneck).");
}

void print_hazard_table() {
  bench::section("E4b", "Hazard behaviour: dependent chains vs independent "
                        "streams (FSM unit, exec latency 1)");
  TextTable t({"workload", "cycles/instr", "lock stalls"});
  for (const bool dependent : {false, true}) {
    top::SystemConfig cfg;
    cfg.stateless_skeleton = fu::Skeleton::kFsm;
    top::System sys(cfg);
    host::Coprocessor copro(sys);
    isa::Program p;
    p.emit_put(1, 1);
    p.emit_put(2, 1);
    const int ops = 256;
    for (int i = 0; i < ops; ++i) {
      isa::Instruction add;
      add.function = isa::fc::kArith;
      add.variety = isa::arith::variety(isa::arith::Op::kAdd);
      // Dependent: r3 += r2 chain (RAW+WAW on r3 and f0 every op).
      // Independent: destinations (data and flag) cycle, so no two
      // in-flight ops share a register.
      add.dst1 = dependent ? 3 : static_cast<isa::RegNum>(3 + (i % 8));
      add.dst_flag = dependent ? 0 : static_cast<isa::RegNum>(i % 4);
      add.src1 = dependent ? 3 : 1;
      add.src2 = 2;
      p.emit(add);
    }
    isa::Instruction sync;
    sync.function = isa::fc::kRtm;
    sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
    p.emit(sync);
    copro.call(p);
    t.add_row({dependent ? "dependent chain r3+=r2" : "independent dsts",
               format_fixed(static_cast<double>(sys.simulator().cycle()) / ops,
                            3),
               std::to_string(sys.rtm().counters().get("stall.lock"))});
  }
  t.print(std::cout);
}

void print_arbiter_ablation() {
  bench::section("E4c", "Write-arbiter grant policy ablation (DESIGN.md §6): "
                        "three units engineered to complete simultaneously");
  TextTable t({"policy", "total cycles", "arbiter contention events"});
  for (const bool rr : {false, true}) {
    top::SystemConfig cfg;
    cfg.with_arithmetic = false;
    cfg.with_logic = false;
    cfg.with_shift = false;
    cfg.rtm.round_robin_arbiter = rr;
    top::System sys(cfg);
    // Pipelined units keep accepting while ops are in flight; depths chosen
    // so that ops dispatched 2 cycles apart (the link rate) drop into their
    // output FIFOs on the same cycle: 6, 4, 2.
    fu::StatelessConfig c6{.width = 32, .skeleton = fu::Skeleton::kPipelined,
                           .pipeline_depth = 6, .fifo_capacity = 12};
    fu::StatelessConfig c4{.width = 32, .skeleton = fu::Skeleton::kPipelined,
                           .pipeline_depth = 4, .fifo_capacity = 12};
    fu::StatelessConfig c2{.width = 32, .skeleton = fu::Skeleton::kPipelined,
                           .pipeline_depth = 2, .fifo_capacity = 12};
    auto u0 = fu::make_arithmetic_unit(sys.simulator(), c6, "arith_d6");
    auto u1 = fu::make_logic_unit(sys.simulator(), c4, "logic_d4");
    auto u2 = fu::make_shift_unit(sys.simulator(), c2, "shift_d2");
    sys.attach(isa::fc::kArith, *u0);
    sys.attach(isa::fc::kLogic, *u1);
    sys.attach(isa::fc::kShift, *u2);
    host::Coprocessor copro(sys);
    isa::Program p;
    p.emit_put(1, 3);
    p.emit_put(2, 5);
    for (int i = 0; i < 100; ++i) {
      for (int u = 0; u < 3; ++u) {
        isa::Instruction inst;
        inst.function = u == 0   ? isa::fc::kArith
                        : u == 1 ? isa::fc::kLogic
                                 : isa::fc::kShift;
        inst.variety = u == 0 ? isa::arith::variety(isa::arith::Op::kAdd)
                       : u == 1
                           ? isa::logic::variety(isa::logic::Op::kXor)
                           : isa::shift::variety(isa::shift::Op::kRol);
        inst.dst1 = static_cast<isa::RegNum>(4 + ((3 * i + u) % 12));
        inst.dst_flag = static_cast<isa::RegNum>((3 * i + u) % 4);
        inst.src1 = 1;
        inst.src2 = 2;
        p.emit(inst);
      }
    }
    isa::Instruction sync;
    sync.function = isa::fc::kRtm;
    sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
    p.emit(sync);
    copro.call(p);
    t.add_row({rr ? "round robin" : "fixed priority",
               std::to_string(sys.simulator().cycle()),
               std::to_string(sys.rtm().counters().get("arbiter.contention"))});
  }
  t.print(std::cout);
  bench::note("Contention events count unit-cycles spent waiting for the");
  bench::note("single write port while another unit was granted.");
}

void print_ooo_evidence() {
  bench::section("E4d", "Out-of-order completion, in-order results "
                        "(paper §II)");
  top::SystemConfig cfg;
  cfg.with_arithmetic = false;  // attach custom-latency units instead
  cfg.with_logic = false;
  cfg.with_shift = false;
  top::System sys(cfg);
  fu::StatelessConfig slow{.width = 32,
                           .skeleton = fu::Skeleton::kFsm,
                           .execute_cycles = 32};
  fu::StatelessConfig fast{.width = 32, .skeleton = fu::Skeleton::kMinimal};
  auto slow_u = fu::make_arithmetic_unit(sys.simulator(), slow, "slow_arith");
  auto fast_u = fu::make_logic_unit(sys.simulator(), fast, "fast_logic");
  sys.attach(isa::fc::kArith, *slow_u);
  sys.attach(isa::fc::kLogic, *fast_u);
  host::Coprocessor copro(sys);
  isa::Program p;
  p.emit_put(1, 9);
  p.emit_put(2, 5);
  isa::Instruction add;  // slow: 32-cycle execute
  add.function = isa::fc::kArith;
  add.variety = isa::arith::variety(isa::arith::Op::kAdd);
  add.dst1 = 3;
  add.src1 = 1;
  add.src2 = 2;
  p.emit(add);
  isa::Instruction land;  // fast: completes long before the ADD
  land.function = isa::fc::kLogic;
  land.variety = isa::logic::variety(isa::logic::Op::kAnd);
  land.dst1 = 4;
  land.src1 = 1;
  land.src2 = 2;
  p.emit(land);
  for (const isa::RegNum r : {isa::RegNum{3}, isa::RegNum{4}}) {
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = r;
    p.emit(get);
  }
  const auto responses = copro.call(p);
  std::printf("  issue order      : ADD(slow, 32-cycle)  AND(fast)\n");
  std::printf("  completion order : AND first (it does not wait for the ADD)\n");
  std::printf("  response order   : GET r3 = %llu, then GET r4 = %llu — "
              "issue order preserved\n",
              static_cast<unsigned long long>(responses[0].payload),
              static_cast<unsigned long long>(responses[1].payload));
  std::printf("  slow unit completions at drain: %llu; fast unit: %llu\n",
              static_cast<unsigned long long>(slow_u->completed()),
              static_cast<unsigned long long>(fast_u->completed()));
}

void print_settle_stats() {
  bench::section("E4e", "Simulation-kernel evidence (DESIGN.md §6): "
                        "fixed-point settle iterations per cycle");
  TextTable t({"configuration", "max settle iterations/cycle"});
  for (const auto s : {fu::Skeleton::kMinimal, fu::Skeleton::kMinimalFwd,
                       fu::Skeleton::kPipelined}) {
    top::SystemConfig cfg;
    cfg.stateless_skeleton = s;
    top::System sys(cfg);
    host::Coprocessor copro(sys);
    copro.call(add_burst(128));
    const char* name = s == fu::Skeleton::kMinimal      ? "minimal units"
                       : s == fu::Skeleton::kMinimalFwd ? "minimal+fwd units"
                                                        : "pipelined units";
    t.add_row({name, std::to_string(sys.simulator().max_settle_iterations())});
  }
  t.print(std::cout);
  bench::note("The fixed-point evaluator settles in a handful of passes —");
  bench::note("the cost the kernel pays for needing no static schedule of");
  bench::note("the combinational network.  A blow-up here would indicate an");
  bench::note("accidental combinational cycle.");
}

void BM_RtmBurstSimulation(benchmark::State& state) {
  const isa::Program p = add_burst(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    top::SystemConfig cfg;
    cfg.stateless_skeleton = fu::Skeleton::kPipelined;
    benchmark::DoNotOptimize(run_burst(cfg, p));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RtmBurstSimulation)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_throughput_table();
  print_hazard_table();
  print_arbiter_ablation();
  print_ooo_evidence();
  print_settle_stats();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
