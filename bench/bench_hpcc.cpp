// Experiment E12: HPCC-style macro-workload suite on the simulated
// coprocessor.
//
// Every earlier benchmark measured our own plumbing (settle loops, FU
// protocol overhead, farm dispatch).  This binary measures *workloads* —
// the shape of the HPC Challenge suite the HPCC_FPGA projects use to
// characterise real FPGA systems — end to end through the host API:
//
//   STREAM        copy/scale/add/triad over scratchpad vectors (bandwidth)
//   RandomAccess  GUPS-style dependent read-modify-write updates (latency)
//   GEMM          blocked matrix multiply on the pipelined GEMM unit
//   b_eff         link efficiency vs message size, clean and faulty link
//
// Each workload validates its results against a host oracle (or the
// sequential reference model) and runs under every pinned settle
// kernel; a validation failure aborts the benchmark.  CI's perf smoke
// asserts a STREAM-triad throughput floor under the event kernel from
// this binary's JSON output.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "host/hpcc.hpp"
#include "util/table.hpp"

namespace {

using namespace fpgafu;
namespace hpcc = host::hpcc;

hpcc::Kernel kernel_of(std::int64_t arg) {
  switch (arg) {
    case 0: return hpcc::Kernel::kBruteForce;
    case 1: return hpcc::Kernel::kSensitivity;
    case 2: return hpcc::Kernel::kEvent;
    default: return hpcc::Kernel::kLevelized;
  }
}

const char* label_of(std::int64_t arg) {
  return hpcc::kernel_name(kernel_of(arg));
}

// Workload sizes for the checked-in tables and JSON.  The unit tests run
// the same code at smaller sizes; these are big enough that per-call
// overhead is amortised but a full 3-kernel sweep stays in seconds.
hpcc::StreamConfig stream_config() {
  hpcc::StreamConfig cfg;
  cfg.elements = 256;
  return cfg;
}

hpcc::RandomAccessConfig ra_config() {
  hpcc::RandomAccessConfig cfg;
  cfg.table_words = 256;
  cfg.updates = 512;
  return cfg;
}

hpcc::GemmConfig gemm_config() {
  hpcc::GemmConfig cfg;
  cfg.n = 16;
  cfg.block = 4;
  return cfg;
}

hpcc::BeffConfig beff_config(bool faulty) {
  hpcc::BeffConfig cfg;
  cfg.message_words = {1, 2, 4, 8, 16, 32, 64, 128};
  cfg.repeats = 4;
  cfg.faulty = faulty;
  return cfg;
}

std::string status_of(const hpcc::WorkloadResult& r) {
  return r.ok() ? "ok" : "MISMATCH";
}

void add_result_row(TextTable& t, const hpcc::WorkloadResult& r,
                    const char* kernel) {
  t.add_row({r.name, kernel, std::to_string(r.jobs) + " " + r.job_unit,
             std::to_string(r.cycles), format_fixed(r.jobs_per_cycle(), 4),
             format_fixed(r.jobs_per_second() / 1e3, 1) + " k/s",
             format_fixed(r.wall_ms, 2), status_of(r)});
}

void print_suite_tables() {
  bench::section("E12",
                 "HPCC-style macro workloads (oracle-validated, all four "
                 "settle kernels)");
  bench::note("STREAM 3x256 words, RandomAccess 256-word table / 512 "
              "updates, GEMM 16x16 (4x4 blocks), b_eff 1..128-word "
              "messages x4");
  TextTable t({"workload", "kernel", "jobs", "cycles", "jobs/cycle",
               "jobs/s", "wall ms", "check"});
  std::vector<hpcc::BeffOutcome> beff_clean, beff_faulty;
  for (const auto kernel : hpcc::all_kernels()) {
    const char* kn = hpcc::kernel_name(kernel);
    for (const auto& r : hpcc::run_stream(kernel, stream_config())) {
      add_result_row(t, r, kn);
    }
    add_result_row(t, hpcc::run_random_access(kernel, ra_config()).result, kn);
    add_result_row(t, hpcc::run_gemm(kernel, gemm_config()), kn);
    beff_clean.push_back(hpcc::run_beff(kernel, beff_config(false)));
    add_result_row(t, beff_clean.back().result, kn);
    beff_faulty.push_back(hpcc::run_beff(kernel, beff_config(true)));
    add_result_row(t, beff_faulty.back().result, kn);
  }
  t.print(std::cout);
  bench::note("jobs/cycle is simulated-hardware efficiency; jobs/s is "
              "host-side simulation speed.");

  bench::section("E12b", "b_eff link efficiency vs message size (levelized "
                         "kernel; payload words per cycle, both directions)");
  TextTable bt({"message words", "clean cycles", "clean words/cycle",
                "faulty cycles", "faulty words/cycle"});
  const auto& clean = beff_clean.back();   // levelized kernel (last pushed)
  const auto& faulty = beff_faulty.back();
  for (std::size_t i = 0; i < clean.points.size(); ++i) {
    const auto& cp = clean.points[i];
    const auto& fp = faulty.points[i];
    bt.add_row({std::to_string(cp.message_words), std::to_string(cp.cycles),
                format_fixed(cp.payload_words_per_cycle, 4),
                std::to_string(fp.cycles),
                format_fixed(fp.payload_words_per_cycle, 4)});
  }
  bt.print(std::cout);
  bench::note("faulty = 1% per-word upstream drop+corrupt+duplicate with "
              "jitter, recovered by host::ReliableTransport (retries: " +
              std::to_string(faulty.transport_retries) + ").");
  bench::note("Asymptotic ceiling: the response frame spends 4 link words "
              "per 64-bit payload word; PUTV spends 2 plus a shared header.");
}

// -- google-benchmark timings (the JSON artifact CI asserts on) -------------

void BM_HpccStream(benchmark::State& state) {
  const auto kernel = kernel_of(state.range(0));
  const auto cfg = stream_config();
  std::uint64_t words = 0;
  std::uint64_t triad_jobs = 0, triad_cycles = 0;
  double triad_wall_ms = 0;
  for (auto _ : state) {
    const auto results = hpcc::run_stream(kernel, cfg);
    for (const auto& r : results) {
      if (!r.ok()) {
        state.SkipWithError(("STREAM pass diverged from oracle: " + r.name).c_str());
        return;
      }
      words += r.jobs;
    }
    const auto& triad = results.back();
    triad_jobs += triad.jobs;
    triad_cycles += triad.cycles;
    triad_wall_ms += triad.wall_ms;
  }
  state.SetLabel(label_of(state.range(0)));
  state.SetItemsProcessed(static_cast<std::int64_t>(words));
  // CI floor: host-side triad throughput (words streamed per second of
  // wall time) and the deterministic hardware efficiency figure.
  state.counters["triad_words_per_s"] =
      triad_wall_ms <= 0 ? 0.0
                         : static_cast<double>(triad_jobs) * 1e3 / triad_wall_ms;
  state.counters["triad_words_per_cycle"] =
      triad_cycles == 0
          ? 0.0
          : static_cast<double>(triad_jobs) / static_cast<double>(triad_cycles);
}
BENCHMARK(BM_HpccStream)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_HpccRandomAccess(benchmark::State& state) {
  const auto kernel = kernel_of(state.range(0));
  const auto cfg = ra_config();
  std::uint64_t updates = 0, cycles = 0;
  for (auto _ : state) {
    const auto out = hpcc::run_random_access(kernel, cfg);
    if (!out.result.ok()) {
      state.SkipWithError("RandomAccess diverged from oracle");
      return;
    }
    updates += out.result.jobs;
    cycles += out.result.cycles;
  }
  state.SetLabel(label_of(state.range(0)));
  state.SetItemsProcessed(static_cast<std::int64_t>(updates));
  state.counters["updates_per_s"] = benchmark::Counter(
      static_cast<double>(updates), benchmark::Counter::kIsRate);
  state.counters["cycles_per_update"] =
      updates == 0
          ? 0.0
          : static_cast<double>(cycles) / static_cast<double>(updates);
}
BENCHMARK(BM_HpccRandomAccess)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_HpccGemm(benchmark::State& state) {
  const auto kernel = kernel_of(state.range(0));
  const auto cfg = gemm_config();
  std::uint64_t macs = 0, cycles = 0;
  for (auto _ : state) {
    const auto r = hpcc::run_gemm(kernel, cfg);
    if (!r.ok()) {
      state.SkipWithError("GEMM diverged from host oracle");
      return;
    }
    macs += r.jobs;
    cycles += r.cycles;
  }
  state.SetLabel(label_of(state.range(0)));
  state.SetItemsProcessed(static_cast<std::int64_t>(macs));
  state.counters["macs_per_s"] = benchmark::Counter(
      static_cast<double>(macs), benchmark::Counter::kIsRate);
  state.counters["macs_per_cycle"] =
      cycles == 0 ? 0.0
                  : static_cast<double>(macs) / static_cast<double>(cycles);
}
BENCHMARK(BM_HpccGemm)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_HpccBeff(benchmark::State& state) {
  const auto kernel = kernel_of(state.range(0));
  const bool faulty = state.range(1) != 0;
  const auto cfg = beff_config(faulty);
  std::uint64_t words = 0, cycles = 0, retries = 0;
  double best_words_per_cycle = 0;
  for (auto _ : state) {
    const auto out = hpcc::run_beff(kernel, cfg);
    if (!out.result.ok()) {
      state.SkipWithError("b_eff responses diverged from reference model");
      return;
    }
    words += out.result.jobs;
    cycles += out.result.cycles;
    retries += out.transport_retries;
    for (const auto& pt : out.points) {
      if (pt.payload_words_per_cycle > best_words_per_cycle) {
        best_words_per_cycle = pt.payload_words_per_cycle;
      }
    }
  }
  state.SetLabel(std::string(label_of(state.range(0))) +
                 (faulty ? "/faulty" : "/clean"));
  state.SetItemsProcessed(static_cast<std::int64_t>(words));
  state.counters["payload_words_per_cycle_best"] = best_words_per_cycle;
  state.counters["transport_retries"] = static_cast<double>(retries);
  state.counters["cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_HpccBeff)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_suite_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
