// Experiment E8 (DESIGN.md §5): projected FPGA wall-clock vs a real CPU.
//
// The paper ran on a ~50 MHz Cyclone.  This harness projects the simulated
// chi-sort cycle counts onto that clock and compares against *real*
// std::sort / std::nth_element wall time measured on this machine, plus the
// instrumented quicksort/quickselect operation counts — reproducing the
// shape of the hardware/software trade-off: a fixed-cycle data-parallel
// engine at a slow clock vs a fast sequential machine doing Θ(n log n)
// work.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xsort/algorithm.hpp"
#include "xsort/baseline.hpp"
#include "xsort/hw_engine.hpp"
#include "xsort/soft_engine.hpp"

namespace {

using namespace fpgafu;
using namespace fpgafu::xsort;
using Clock = std::chrono::steady_clock;

constexpr double kFpgaMhz = 50.0;
/// Modelled CPU clock for converting instrumented op counts to time — a
/// contemporary (2010) host at 2 GHz, ~4 cycles per compare-and-move step.
constexpr double kCpuMhz = 2000.0;
constexpr double kCpuCyclesPerStep = 4.0;

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) {
    x = rng.below(1u << 20);
  }
  return v;
}

double wall_us(const std::function<void()>& fn, int reps) {
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) {
    fn();
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
}

void print_sort_comparison() {
  bench::section("E8", "chi-sort @50 MHz (projected) vs sequential sorts: "
                       "full sort of n values");
  TextTable t({"n", "fpga us (proj)", "quicksort us (model)",
               "std::sort us (real, this CPU)", "fpga/quicksort"});
  for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto vals = random_values(n, n);

    HwXsortEngine hw({.cells = n, .interval_bits = 16});
    XsortAlgorithm algo(hw);
    hw.reset_cost();
    algo.sort(vals);
    const double fpga_us = static_cast<double>(hw.cost_cycles()) / kFpgaMhz;

    BaselineStats stats;
    counted_quicksort(vals, stats);
    const double qs_us = static_cast<double>(stats.comparisons + stats.moves) *
                         kCpuCyclesPerStep / kCpuMhz;

    const double std_us = wall_us([&] { cpu_sort(vals); }, 50);

    t.add_row({std::to_string(n), format_fixed(fpga_us, 1),
               format_fixed(qs_us, 1), format_fixed(std_us, 1),
               format_fixed(fpga_us / qs_us, 2)});
  }
  t.print(std::cout);
  bench::note("Shape: the FPGA engine is linear in n with a large constant");
  bench::note("(its 50 MHz clock and the per-round op sequence), sequential");
  bench::note("sorts are n log n with a small constant on a GHz-class CPU —");
  bench::note("whole-array sorting does not pay off; data-parallel");
  bench::note("*operations* do (see E8b).");
}

void print_selection_comparison() {
  bench::section("E8b", "Selection (k = n/2): the data-parallel win case");
  TextTable t({"n", "fpga us (proj)", "quickselect us (model)",
               "nth_element us (real)", "fpga/quickselect"});
  for (const std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    const auto vals = random_values(n, n + 1);

    HwXsortEngine hw({.cells = n, .interval_bits = 32});
    XsortAlgorithm algo(hw);
    algo.load(vals);
    hw.reset_cost();
    algo.select(n / 2);
    const double fpga_us = static_cast<double>(hw.cost_cycles()) / kFpgaMhz;

    BaselineStats stats;
    counted_quickselect(vals, n / 2, stats);
    const double qsel_us = static_cast<double>(stats.comparisons +
                                               stats.moves) *
                           kCpuCyclesPerStep / kCpuMhz;

    const double nth_us = wall_us([&] { cpu_select(vals, n / 2); }, 50);

    t.add_row({std::to_string(n), format_fixed(fpga_us, 2),
               format_fixed(qsel_us, 2), format_fixed(nth_us, 2),
               format_fixed(fpga_us / qsel_us, 3)});
  }
  t.print(std::cout);
  bench::note("Selection needs only O(log n) fixed-cycle rounds on the cell");
  bench::note("array while any sequential algorithm must touch Θ(n)");
  bench::note("elements: the FPGA advantage *grows* with n and crosses over");
  bench::note("even against a 40x faster clock.");
}

void print_per_round_comparison() {
  bench::section("E8c", "One refinement round (the paper's per-operation "
                        "claim, in wall time)");
  TextTable t({"n", "fpga us/round (proj)", "cpu us/round (model, Θ(n))"});
  for (const std::size_t n : {64u, 1024u, 16384u}) {
    // One round costs a fixed 18 ops on the unit; measure it.
    const auto vals = random_values(n, 3);
    HwXsortEngine hw({.cells = n, .interval_bits = 32});
    XsortAlgorithm algo(hw);
    algo.load(vals);
    hw.reset_cost();
    algo.reset_stats();
    algo.select(0);  // at least one round, all fixed cost
    const double us_per_round =
        static_cast<double>(hw.cost_cycles()) /
        static_cast<double>(algo.stats().rounds == 0 ? 1
                                                     : algo.stats().rounds) /
        kFpgaMhz;
    // CPU: one round = ~18 passes over n elements in the emulation model.
    SoftXsortEngine sw({.cells = n, .interval_bits = 32});
    XsortAlgorithm salgo(sw);
    salgo.load(vals);
    sw.reset_cost();
    salgo.reset_stats();
    salgo.select(0);
    const double cpu_us =
        static_cast<double>(sw.cost_cycles()) /
        static_cast<double>(salgo.stats().rounds == 0 ? 1
                                                      : salgo.stats().rounds) /
        kCpuMhz;
    t.add_row({std::to_string(n), format_fixed(us_per_round, 3),
               format_fixed(cpu_us, 3)});
  }
  t.print(std::cout);
}

void BM_StdSort(benchmark::State& state) {
  const auto vals = random_values(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu_sort(vals));
  }
}
BENCHMARK(BM_StdSort)->Arg(1024)->Arg(4096);

void BM_NthElement(benchmark::State& state) {
  const auto vals = random_values(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpu_select(vals, vals.size() / 2));
  }
}
BENCHMARK(BM_NthElement)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_sort_comparison();
  print_selection_comparison();
  print_per_round_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
