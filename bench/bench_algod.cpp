// Experiment E15: algorithm-on-demand slot-cache behaviour under
// multi-tenant load.
//
// The paper notes the functional-unit approach "lends itself to dynamic
// reconfiguration": algorithm circuits are swapped through a bounded set of
// physical FU slots instead of synthesised into one monolithic design.
// host::FuManager models that as a software-managed cache — this bench
// sweeps the slot budget across a fixed six-image catalogue and a skewed
// tenant mix, reporting the cache counters (hits / misses / evictions) and
// the resulting hit rate alongside jobs/s.  Small budgets force constant
// replacement (nonzero evictions); budgets that fit the whole catalogue
// converge to a hit rate near 1 after the cold loads.  CI's perf-smoke step
// asserts both ends of that curve from the JSON artifact.
//
// Second axis: the replacement policy (LRU vs GreedyDual-style cost-aware),
// over images with deliberately unequal load_cycles so the policies can
// actually disagree.  Every job's responses are checked bit-identically
// against host::ReferenceModel.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fu/stateless_units.hpp"
#include "host/algod.hpp"
#include "host/farm.hpp"
#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpgafu;

/// Factory covering the six stateless case-study units, so images are
/// declared over codes the ReferenceModel knows the semantics of.
std::unique_ptr<fu::FunctionalUnit> make_unit_for(sim::Simulator& sim,
                                                  isa::FunctionCode code) {
  fu::StatelessConfig ucfg;
  ucfg.width = 32;
  switch (code) {
    case isa::fc::kArith:
      return fu::make_arithmetic_unit(sim, ucfg);
    case isa::fc::kLogic:
      return fu::make_logic_unit(sim, ucfg);
    case isa::fc::kShift:
      return fu::make_shift_unit(sim, ucfg);
    case isa::fc::kMulDiv:
      ucfg.skeleton = fu::Skeleton::kFsm;
      ucfg.execute_cycles = 0;
      return fu::make_muldiv_unit(sim, ucfg);
    case isa::fc::kFloat:
      return fu::make_fp32_unit(sim, ucfg);
    case isa::fc::kTrig:
      ucfg.skeleton = fu::Skeleton::kFsm;
      ucfg.execute_cycles = 0;
      return fu::make_trig_unit(sim, ucfg);
    default:
      return nullptr;
  }
}

host::AlgorithmImage image_of(const std::string& name, isa::FunctionCode code,
                              std::uint64_t load_cycles) {
  host::AlgorithmImage img;
  img.name = name;
  img.codes = {code};
  img.load_cycles = load_cycles;
  img.factory = make_unit_for;
  return img;
}

/// Six single-code images with unequal reload costs (the cost-aware policy
/// needs a spread to be aware of).
std::vector<host::AlgorithmImage> catalogue() {
  return {image_of("arith", isa::fc::kArith, 100),
          image_of("logic", isa::fc::kLogic, 200),
          image_of("shift", isa::fc::kShift, 300),
          image_of("muldiv", isa::fc::kMulDiv, 400),
          image_of("float", isa::fc::kFloat, 500),
          image_of("trig", isa::fc::kTrig, 600)};
}

const char* const kImageNames[] = {"arith",  "logic", "shift",
                                   "muldiv", "float", "trig"};

/// All units this bench schedules have no FU-frame codes outside the
/// manager: the Systems start bare so the manager owns every code.
top::SystemConfig bare_system() {
  top::SystemConfig sc;
  sc.with_arithmetic = false;
  sc.with_logic = false;
  sc.with_shift = false;
  sc.with_muldiv = false;
  sc.with_float = false;
  sc.with_trig = false;
  return sc;
}

/// Self-contained job touching exactly `images`: writes every register it
/// reads, so a fresh ReferenceModel predicts its responses regardless of
/// what earlier tenants left in the shard's register file.
isa::Program program_for(const std::vector<std::string>& images,
                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string src;
  src += "PUT r1, #" + std::to_string(rng.below(1u << 20)) + "\n";
  src += "PUT r2, #" + std::to_string(1 + rng.below(1u << 10)) + "\n";
  for (const std::string& name : images) {
    if (name == "arith") {
      src += "ADD r3, r1, r2\nGET r3\n";
    } else if (name == "logic") {
      src += "XOR r4, r1, r2\nGET r4\n";
    } else if (name == "shift") {
      src += "SHR r5, r1, r2\nGET r5\n";
    } else if (name == "muldiv") {
      src += "MUL r6, r1, r2\nGET r6\n";
    } else if (name == "float") {
      src += "FMUL r7, r1, r2\nGET r7\n";
    } else if (name == "trig") {
      src += "SIN r3, r1\nGET r3\n";
    }
  }
  return isa::Assembler::assemble(src);
}

struct Tenant {
  host::Farm::SessionId session = 0;
  isa::Program program;
  std::vector<msg::Response> expected;
};

constexpr std::size_t kTenants = 24;
constexpr std::size_t kJobsPerTenantPerIteration = 2;

/// Skewed required-set draw: 80% of tenants work a two-image hot set; the
/// rest wander the cold tail, which is what forces replacement once the
/// budget is smaller than the catalogue.
std::vector<std::string> draw_required(Xoshiro256& rng) {
  std::vector<std::string> required;
  const std::size_t first =
      rng.chance(4, 5) ? rng.below(2) : 2 + rng.below(4);
  required.push_back(kImageNames[first]);
  if (rng.chance(1, 3)) {
    const std::size_t second =
        rng.chance(4, 5) ? rng.below(2) : 2 + rng.below(4);
    if (kImageNames[second] != required.front()) {
      required.push_back(kImageNames[second]);
    }
  }
  return required;
}

/// Jobs/s and cache counters at a slot budget of `state.range(0)` with
/// policy `state.range(1)` (0 = LRU, 1 = cost-aware), one shard so every
/// tenant contends for the same manager.
void BM_AlgodSlotSweep(benchmark::State& state) {
  const std::size_t slots = static_cast<std::size_t>(state.range(0));
  const bool cost_aware = state.range(1) != 0;
  host::FarmConfig fc;
  fc.shards = 1;
  fc.system = bare_system();
  fc.transport.window = 4;
  fc.queue_capacity = 2 * kTenants * kJobsPerTenantPerIteration;
  fc.fu_images = catalogue();
  fc.fu_slots = slots;
  if (cost_aware) {
    fc.fu_policy = [] {
      return std::static_pointer_cast<host::ReplacementPolicy>(
          std::make_shared<host::CostAwarePolicy>());
    };
  }
  host::Farm farm(fc);

  Xoshiro256 rng(0xa190d'0000 + slots * 2 + (cost_aware ? 1 : 0));
  std::vector<Tenant> tenants;
  for (std::size_t t = 0; t < kTenants; ++t) {
    Tenant tenant;
    const std::vector<std::string> required = draw_required(rng);
    tenant.session = farm.create_session(required);
    tenant.program = program_for(required, rng.next());
    host::ReferenceModel model(fc.system.rtm);
    tenant.expected = model.run(tenant.program);
    tenants.push_back(std::move(tenant));
  }

  std::uint64_t jobs = 0;
  for (auto _ : state) {
    std::vector<std::future<std::vector<msg::Response>>> futures;
    std::vector<std::size_t> who;
    for (std::size_t round = 0; round < kJobsPerTenantPerIteration; ++round) {
      for (std::size_t t = 0; t < kTenants; ++t) {
        futures.push_back(
            farm.submit(tenants[t].session, tenants[t].program));
        who.push_back(t);
      }
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].get() != tenants[who[i]].expected) {
        state.SkipWithError("algod response diverged from ReferenceModel");
        return;
      }
    }
    jobs += futures.size();
  }
  farm.shutdown();  // counters are exact only after shutdown

  const auto counters = farm.counters().all();
  const auto counter = [&](const char* key) -> double {
    const auto it = counters.find(key);
    return it == counters.end() ? 0.0 : static_cast<double>(it->second);
  };
  const double hits = counter("algod.hits");
  const double misses = counter("algod.misses");
  const host::LatencyPercentiles lat =
      host::latency_percentiles(farm.job_latency_samples());
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["slots"] = static_cast<double>(slots);
  state.counters["cost_aware"] = cost_aware ? 1.0 : 0.0;
  state.counters["hits"] = hits;
  state.counters["misses"] = misses;
  state.counters["hit_rate"] =
      hits + misses > 0 ? hits / (hits + misses) : 0.0;
  state.counters["evictions"] = counter("algod.evictions");
  state.counters["loads"] = counter("algod.loads");
  state.counters["load_cycles"] = counter("algod.load_cycles");
  state.counters["drain_cycles"] = counter("algod.drain_cycles");
  // Simulated-cycle job latency distribution (enqueue -> completion) over
  // the most recent samples; the tail shows what slot pressure costs the
  // unluckiest tenants, not just the mean.
  state.counters["lat_p50"] = static_cast<double>(lat.p50);
  state.counters["lat_p95"] = static_cast<double>(lat.p95);
  state.counters["lat_p99"] = static_cast<double>(lat.p99);
  state.counters["jobs/s"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

void register_slot_sweep() {
  auto* b = benchmark::RegisterBenchmark("BM_AlgodSlotSweep", BM_AlgodSlotSweep)
                ->Unit(benchmark::kMillisecond)
                ->UseRealTime()
                ->MeasureProcessCPUTime();
  // Slot budgets from heavy pressure (a third of the catalogue) to
  // everything-resident, under both policies.  slots=6 fits all six
  // images: after the cold loads every probe is a hit and evictions
  // stay at zero — the floor CI asserts.
  for (long slots : {2, 3, 4, 6}) {
    b->Args({slots, 0});
    b->Args({slots, 1});
  }
}

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  fpgafu::bench::section(
      "E15", "algorithm-on-demand slot cache (hit rate vs slot budget)");
  fpgafu::bench::note(
      "six-image catalogue, 24 skewed tenants on one shard; every job "
      "checked bit-identical against host::ReferenceModel");
  fpgafu::bench::note(
      "hit_rate = algod.hits / (hits + misses) over the whole run, "
      "including cold loads");
  register_slot_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
