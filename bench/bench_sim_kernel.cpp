// Experiments E9/E11: settle-kernel cost on a wide system.
//
// The fixed-point settle is the simulator's inner loop.  The brute-force
// kernel re-runs every component's eval() on every settle pass, so its
// cost per cycle grows with the *total* number of attached components even
// when almost all of them are idle.  The sensitivity-scheduled kernel
// evaluates everything once per cycle (registered state may have changed
// at the commit) and then re-evaluates only components whose recorded
// input wires changed.  On the paper's target topology — a controller with
// many attached functional units, few of them active in any given cycle —
// that is exactly the sparse-activity regime where event-driven scheduling
// pays.
//
// The event kernel extends that across the clock edge (idle components
// skip the first pass and commit too), and the levelized kernel compiles
// the observed graph into a static level-order sweep that replaces the
// dirty-queue bookkeeping entirely — optionally splitting wide levels
// across a small thread pool (the `mt` rows).
//
// The measured system: an RTM with 32 multi-cycle FSM arithmetic units
// plus the χ-sort engine (256-cell SIMD array), driven over the tight
// link by a round-robin instruction stream that keeps only one or two
// units busy at a time.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "host/coprocessor.hpp"
#include "isa/arith.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"
#include "util/table.hpp"
#include "xsort/types.hpp"

namespace {

using namespace fpgafu;

constexpr int kWideUnits = 32;

top::SystemConfig wide_config() {
  top::SystemConfig cfg;
  // The 32 units are attached explicitly below; drop the stock set so the
  // unit count is exactly what the experiment says it is.
  cfg.with_arithmetic = false;
  cfg.with_logic = false;
  cfg.with_shift = false;
  cfg.with_muldiv = false;
  cfg.with_float = false;
  cfg.with_trig = false;
  cfg.with_xsort = true;
  cfg.xsort.cells = 256;
  return cfg;
}

/// Attach `kWideUnits` multi-cycle arithmetic units under user function
/// codes.  FSM skeleton with a 4-cycle execute: a dispatched unit stays
/// busy for a while, but its output wires are quiet until completion — the
/// sparse-activity case.
std::vector<std::unique_ptr<fu::FunctionalUnit>> attach_wide_units(
    top::System& sys) {
  std::vector<std::unique_ptr<fu::FunctionalUnit>> units;
  fu::StatelessConfig ucfg;
  ucfg.width = 32;
  ucfg.skeleton = fu::Skeleton::kFsm;
  ucfg.execute_cycles = 4;
  for (int i = 0; i < kWideUnits; ++i) {
    units.push_back(fu::make_arithmetic_unit(sys.simulator(), ucfg,
                                             "arith" + std::to_string(i)));
    sys.attach(static_cast<isa::FunctionCode>(isa::fc::kUserBase + i),
               *units.back());
  }
  return units;
}

/// Round-robin one ADD to each of the 32 units per sweep, with an χ-sort
/// count every sweep, ending with a SYNC.  Destination registers cycle so
/// no two in-flight operations collide on a lock.
isa::Program sparse_workload(int sweeps) {
  isa::Program p;
  p.emit_put(1, 11);
  p.emit_put(2, 22);
  {
    isa::Instruction reset;
    reset.function = isa::fc::kXsort;
    reset.variety = static_cast<isa::VarietyCode>(xsort::XsortOp::kReset);
    reset.src1 = 1;
    reset.dst1 = 30;
    reset.dst_flag = 7;
    p.emit(reset);
  }
  int n = 0;
  for (int s = 0; s < sweeps; ++s) {
    for (int u = 0; u < kWideUnits; ++u) {
      isa::Instruction add;
      add.function = static_cast<isa::FunctionCode>(isa::fc::kUserBase + u);
      add.variety = isa::arith::variety(isa::arith::Op::kAdd);
      add.dst1 = static_cast<isa::RegNum>(3 + (n % 24));
      add.dst_flag = static_cast<isa::RegNum>(n % 4);
      add.src1 = 1;
      add.src2 = 2;
      p.emit(add);
      ++n;
    }
    isa::Instruction count;
    count.function = isa::fc::kXsort;
    count.variety = static_cast<isa::VarietyCode>(xsort::XsortOp::kCount);
    count.src1 = 1;
    count.dst1 = 31;
    count.dst_flag = 5;
    p.emit(count);
  }
  isa::Instruction sync;
  sync.function = isa::fc::kRtm;
  sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  p.emit(sync);
  return p;
}

struct KernelResult {
  std::uint64_t cycles = 0;
  std::uint64_t evals = 0;
  unsigned max_settle = 0;
  double wall_ms = 0;
};

KernelResult run_wide(sim::Simulator::Kernel kernel, const isa::Program& p,
                      unsigned settle_threads = 0) {
  top::System sys(wide_config());
  sys.simulator().set_kernel(kernel);
  sys.simulator().set_settle_threads(settle_threads);
  auto units = attach_wide_units(sys);
  host::Coprocessor copro(sys);
  const auto t0 = std::chrono::steady_clock::now();
  copro.call(p);
  const auto t1 = std::chrono::steady_clock::now();
  KernelResult r;
  r.cycles = sys.simulator().cycle();
  r.evals = sys.simulator().evals_performed();
  r.max_settle = sys.simulator().max_settle_iterations();
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          t1 - t0)
          .count();
  return r;
}

void print_kernel_table() {
  bench::section("E9/E11",
                 "Settle-kernel cost: 32 FSM units + 256-cell xsort "
                 "engine, sparse round-robin workload (16 sweeps)");
  const isa::Program p = sparse_workload(16);
  // Best-of-3 so the wall column is not dominated by cold-start noise
  // (the google-benchmark runs below give the statistically solid view).
  const auto best_of = [&](sim::Simulator::Kernel k, unsigned threads = 0) {
    KernelResult best = run_wide(k, p, threads);
    for (int i = 0; i < 2; ++i) {
      const KernelResult r = run_wide(k, p, threads);
      if (r.wall_ms < best.wall_ms) {
        best = r;
      }
    }
    return best;
  };
  const KernelResult brute = best_of(sim::Simulator::Kernel::kBruteForce);
  const KernelResult sens = best_of(sim::Simulator::Kernel::kSensitivity);
  const KernelResult event = best_of(sim::Simulator::Kernel::kEvent);
  const KernelResult lvl = best_of(sim::Simulator::Kernel::kLevelized);
  const KernelResult lvl_mt = best_of(sim::Simulator::Kernel::kLevelized, 2);
  TextTable t({"kernel", "cycles", "eval() calls", "evals/cycle",
               "max settle", "wall ms"});
  const auto row = [&](const char* name, const KernelResult& r) {
    t.add_row({name, std::to_string(r.cycles), std::to_string(r.evals),
               format_fixed(static_cast<double>(r.evals) /
                                static_cast<double>(r.cycles),
                            2),
               std::to_string(r.max_settle), format_fixed(r.wall_ms, 2)});
  };
  row("brute force", brute);
  row("sensitivity", sens);
  row("event", event);
  row("levelized", lvl);
  row("levelized mt2", lvl_mt);
  t.print(std::cout);
  std::printf("  eval-call ratio (brute/sensitivity): %.2fx\n",
              static_cast<double>(brute.evals) /
                  static_cast<double>(sens.evals));
  std::printf("  eval-call ratio (sensitivity/event): %.2fx\n",
              static_cast<double>(sens.evals) /
                  static_cast<double>(event.evals));
  std::printf("  wall-time ratio (brute/sensitivity): %.2fx\n",
              brute.wall_ms / sens.wall_ms);
  std::printf("  wall-time ratio (sensitivity/event): %.2fx\n",
              sens.wall_ms / event.wall_ms);
  std::printf("  wall-time ratio (event/levelized): %.2fx\n",
              event.wall_ms / lvl.wall_ms);
  bench::note("Identical cycle counts are required (the kernels are pinned");
  bench::note("bit-identical by tests/rtm/test_kernel_differential.cpp and");
  bench::note("the randomized-topology fuzzer tests/rtm/test_kernel_fuzz.cpp).");
  bench::note("The sensitivity kernel drops re-evaluations of idle");
  bench::note("components on settle passes after the first; the event");
  bench::note("kernel carries activity across the clock edge and skips");
  bench::note("idle components in the first pass and in commit too; the");
  bench::note("levelized kernel compiles the observed graph into a static");
  bench::note("level-order sweep with no per-eval queue bookkeeping.");
  bench::note("levelized mt2 = same schedule, wide levels split across 2");
  bench::note("lanes (set_settle_threads(2)); this topology's levels are");
  bench::note("too narrow for the barrier cost to pay off — the row is the");
  bench::note("honest negative result, the knob stays opt-in.");
  if (brute.cycles != sens.cycles || brute.cycles != event.cycles ||
      brute.cycles != lvl.cycles || brute.cycles != lvl_mt.cycles) {
    std::printf("  ERROR: cycle counts diverged (%llu vs %llu vs %llu vs "
                "%llu vs %llu)\n",
                static_cast<unsigned long long>(brute.cycles),
                static_cast<unsigned long long>(sens.cycles),
                static_cast<unsigned long long>(event.cycles),
                static_cast<unsigned long long>(lvl.cycles),
                static_cast<unsigned long long>(lvl_mt.cycles));
  }
}

// Args: {kernel index into Simulator::kAllKernels, settle threads}.  The
// thread count is an explicit knob — only the levelized kernel consults it,
// and only the {3, 2} variant turns it on.
void BM_WideSystemSettle(benchmark::State& state) {
  const auto kernel =
      sim::Simulator::kAllKernels[static_cast<std::size_t>(state.range(0))];
  const auto threads = static_cast<unsigned>(state.range(1));
  // Same 16-sweep workload as the table above: long enough that the
  // levelized kernel's one-time schedule elaboration is amortised and the
  // rows measure steady-state settle cost, not System construction.
  const isa::Program p = sparse_workload(16);
  std::uint64_t cycles = 0;
  std::uint64_t evals = 0;
  for (auto _ : state) {
    top::System sys(wide_config());
    sys.simulator().set_kernel(kernel);
    sys.simulator().set_settle_threads(threads);
    auto units = attach_wide_units(sys);
    host::Coprocessor copro(sys);
    copro.call(p);
    cycles += sys.simulator().cycle();
    evals += sys.simulator().evals_performed();
  }
  std::string label = sim::Simulator::kernel_name(kernel);
  if (threads > 1) {
    label += "_mt" + std::to_string(threads);
  }
  state.SetLabel(label);
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  // Scheduler-efficiency figure the CI perf smoke asserts on: average
  // eval() calls per simulated cycle.
  state.counters["evals_per_cycle"] = benchmark::Counter(
      cycles == 0 ? 0.0
                  : static_cast<double>(evals) / static_cast<double>(cycles));
}
BENCHMARK(BM_WideSystemSettle)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_kernel_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
