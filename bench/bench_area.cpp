// Experiment E7 (DESIGN.md §5): FPGA resource model.
//
// Quantifies the thesis' qualitative observations: the pipelined skeleton
// "uses a lot of FPGA resources and especially on-chip SRAM blocks consumed
// by the FIFO buffers" (§2.3.4); the chi-sort array grows linearly in
// cells with a logarithmic tree on top; the controller generics (word
// width, register count) set its footprint.  Paired with the E3 throughput
// data this gives the area-vs-throughput trade-off curve.

#include <benchmark/benchmark.h>

#include <iostream>

#include "area/area_model.hpp"
#include "bench_util.hpp"
#include "util/table.hpp"

namespace {

using namespace fpgafu;
using area::Estimate;

void print_skeleton_area() {
  bench::section("E7", "Area of one 32-bit arithmetic unit per protocol "
                       "skeleton (vs its E3 throughput)");
  TextTable t({"skeleton", "LUTs", "FFs", "BRAM bits", "M4K blocks",
               "cycles/op (E3)"});
  struct Row {
    const char* name;
    fu::StatelessConfig cfg;
    const char* throughput;
  };
  const Row rows[] = {
      {"minimal", {.width = 32, .skeleton = fu::Skeleton::kMinimal}, "2.0"},
      {"minimal+fwd", {.width = 32, .skeleton = fu::Skeleton::kMinimalFwd},
       "1.0"},
      {"fsm (1-cycle exec)", {.width = 32, .skeleton = fu::Skeleton::kFsm},
       "3.0"},
      {"pipelined d=3 fifo=8",
       {.width = 32,
        .skeleton = fu::Skeleton::kPipelined,
        .pipeline_depth = 3,
        .fifo_capacity = 8},
       "1.0"},
  };
  for (const Row& r : rows) {
    const Estimate e = area::stateless_unit(r.cfg);
    t.add_row({r.name, std::to_string(e.luts), std::to_string(e.ffs),
               std::to_string(e.bram_bits), std::to_string(e.m4k_blocks()),
               r.throughput});
  }
  t.print(std::cout);
}

void print_fifo_sweep() {
  bench::section("E7b", "Pipelined skeleton: FIFO depth sweep (SRAM cost of "
                        "decoupling)");
  TextTable t({"fifo depth", "BRAM bits", "M4K blocks", "FFs"});
  for (const std::size_t depth : {4u, 8u, 16u, 32u, 64u}) {
    fu::StatelessConfig cfg{.width = 32,
                            .skeleton = fu::Skeleton::kPipelined,
                            .pipeline_depth = 3,
                            .fifo_capacity = depth};
    const Estimate e = area::stateless_unit(cfg);
    t.add_row({std::to_string(depth), std::to_string(e.bram_bits),
               std::to_string(e.m4k_blocks()), std::to_string(e.ffs)});
  }
  t.print(std::cout);
}

void print_xsort_scaling() {
  bench::section("E7c", "chi-sort engine area vs cell count (linear cells + "
                        "logarithmic tree)");
  TextTable t({"cells", "LUTs", "FFs", "LUTs/cell"});
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    const xsort::XsortConfig cfg{.cells = n, .interval_bits = 16};
    const Estimate e = area::xsort_unit(cfg);
    t.add_row({std::to_string(n), std::to_string(e.luts),
               std::to_string(e.ffs),
               format_fixed(static_cast<double>(e.luts) /
                                static_cast<double>(n),
                            1)});
  }
  t.print(std::cout);
}

void print_system_report() {
  bench::section("E7d", "Full-system resource report (RTM + three stateless "
                        "units + 64-cell chi-sort)");
  TextTable t({"component", "LUTs", "FFs", "BRAM bits"});
  rtm::RtmConfig rcfg;
  std::vector<fu::StatelessConfig> units = {
      {.width = 32, .skeleton = fu::Skeleton::kMinimal},
      {.width = 32, .skeleton = fu::Skeleton::kMinimal},
      {.width = 32, .skeleton = fu::Skeleton::kMinimal}};
  xsort::XsortConfig xcfg{.cells = 64, .interval_bits = 16};
  for (const auto& line : area::system_report(rcfg, units, &xcfg)) {
    t.add_row({line.component, std::to_string(line.estimate.luts),
               std::to_string(line.estimate.ffs),
               std::to_string(line.estimate.bram_bits)});
  }
  t.print(std::cout);
  bench::note("A Cyclone EP1C12 offers ~12k LEs and 52 M4K blocks — the");
  bench::note("reference configuration fits with room for user units, as");
  bench::note("the thesis' prototype did.");
}

void BM_AreaEstimation(benchmark::State& state) {
  rtm::RtmConfig rcfg;
  std::vector<fu::StatelessConfig> units(3);
  xsort::XsortConfig xcfg{.cells = 256, .interval_bits = 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(area::system_report(rcfg, units, &xcfg));
  }
}
BENCHMARK(BM_AreaEstimation);

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_skeleton_area();
  print_fifo_sweep();
  print_xsort_scaling();
  print_system_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
