// Experiment E10: multi-System coprocessor farm throughput scaling.
//
// The paper's arrangement is "one or more CPUs communicate via the
// interface with a set of functional units"; host::Farm scales that out to
// N independent System shards, one worker thread each.  Because shards
// share nothing (each owns its whole simulated fabric), aggregate program
// throughput should scale near-linearly with shards up to the core count —
// this bench measures programs/second for 1..hardware_concurrency shards
// and cross-checks every shard's responses bit-identically against
// host::ReferenceModel.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "host/farm.hpp"
#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpgafu;

/// Self-contained job: writes every register it reads, so its response
/// stream is reference-checkable no matter what earlier jobs left in the
/// shard's register file.  ~56 instructions of PUT/ALU/GET traffic.
isa::Program farm_job(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string src;
  for (int round = 0; round < 8; ++round) {
    for (int r = 1; r <= 4; ++r) {
      src += "PUT r" + std::to_string(r) + ", #" +
             std::to_string(rng.below(1u << 20)) + "\n";
    }
    src += "ADD r5, r1, r2\nSUB r6, r3, r4\nADD r7, r5, r6\n";
    src += "GET r5\nGET r6\nGET r7\n";
  }
  return isa::Assembler::assemble(src);
}

constexpr std::uint64_t kJobSeeds = 16;
constexpr std::size_t kJobsPerIteration = 64;

/// Aggregate throughput at `state.range(0)` shards.  Every response is
/// compared against the reference model — a mismatch aborts the bench.
void BM_FarmThroughput(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  host::FarmConfig fc;
  fc.shards = shards;
  fc.queue_capacity = 2 * kJobsPerIteration;
  host::Farm farm(fc);

  std::vector<isa::Program> programs;
  std::vector<std::vector<msg::Response>> expected;
  for (std::uint64_t s = 0; s < kJobSeeds; ++s) {
    programs.push_back(farm_job(0xfa12'0000 + s));
    expected.push_back(
        host::ReferenceModel(top::SystemConfig{}.rtm).run(programs.back()));
  }

  std::uint64_t jobs = 0;
  for (auto _ : state) {
    std::vector<std::future<std::vector<msg::Response>>> futures;
    futures.reserve(kJobsPerIteration);
    for (std::size_t i = 0; i < kJobsPerIteration; ++i) {
      futures.push_back(farm.submit(programs[i % kJobSeeds]));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].get() != expected[i % kJobSeeds]) {
        state.SkipWithError("farm response diverged from ReferenceModel");
        return;
      }
    }
    jobs += futures.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["jobs/s"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

void register_shard_sweep() {
  auto* b = benchmark::RegisterBenchmark("BM_FarmThroughput", BM_FarmThroughput)
                ->Unit(benchmark::kMillisecond)
                ->UseRealTime()
                ->MeasureProcessCPUTime();
  // Sweep powers of two up to the core count, but always cover at least
  // 1/2/4 shards so the multi-shard paths are exercised even on small
  // runners (scaling past the core count is not expected there).
  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  for (unsigned s = 1; s <= hw; s *= 2) {
    b->Arg(static_cast<long>(s));
  }
  if ((hw & (hw - 1)) != 0) {
    b->Arg(static_cast<long>(hw));  // include the exact core count too
  }
}

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  fpgafu::bench::section(
      "E10", "farm throughput scaling (programs/s vs shard count)");
  fpgafu::bench::note(
      "every job's responses are checked bit-identical against "
      "host::ReferenceModel; items_per_second is aggregate programs/s");
  fpgafu::bench::note("hardware_concurrency = " +
                      std::to_string(std::thread::hardware_concurrency()));
  register_shard_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
