// Experiment E10: multi-System coprocessor farm throughput scaling.
//
// The paper's arrangement is "one or more CPUs communicate via the
// interface with a set of functional units"; host::Farm scales that out to
// N independent System shards, one worker thread each.  Because shards
// share nothing (each owns its whole simulated fabric), aggregate program
// throughput should scale near-linearly with shards up to the core count —
// this bench measures programs/second for 1..hardware_concurrency shards
// and cross-checks every shard's responses bit-identically against
// host::ReferenceModel.
//
// Second axis: the transport window.  window=1 is the call-and-wait
// baseline (one round trip per job); window>1 keeps that many programs in
// flight per shard, so the queue/pump overhead between jobs amortises and
// a shard's wire never goes idle between programs.  The sweep below pins
// the windowed speedup that CI's perf-smoke step asserts.

#include <benchmark/benchmark.h>

#include <condition_variable>
#include <cstdlib>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "host/farm.hpp"
#include "host/reference_model.hpp"
#include "isa/assembler.hpp"
#include "util/rng.hpp"

namespace {

using namespace fpgafu;

/// Self-contained job: writes every register it reads, so its response
/// stream is reference-checkable no matter what earlier jobs left in the
/// shard's register file.  ~56 instructions of PUT/ALU/GET traffic.
isa::Program farm_job(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::string src;
  for (int round = 0; round < 8; ++round) {
    for (int r = 1; r <= 4; ++r) {
      src += "PUT r" + std::to_string(r) + ", #" +
             std::to_string(rng.below(1u << 20)) + "\n";
    }
    src += "ADD r5, r1, r2\nSUB r6, r3, r4\nADD r7, r5, r6\n";
    src += "GET r5\nGET r6\nGET r7\n";
  }
  return isa::Assembler::assemble(src);
}

constexpr std::uint64_t kJobSeeds = 16;
constexpr std::size_t kJobsPerIteration = 64;

/// Status-poll job against session register state: two GETs (think "poll
/// the completion flag, fetch the result register"), no writes.  Read
/// groups carry no write barrier, so with window > 1 the transport issues
/// the next poll's GETs while the previous poll's responses are still
/// crossing the return link — the full link round trip a call-and-wait
/// loop pays at every job boundary pipelines away (measured on this
/// fabric: 16 cycles/poll at window=1 vs 8 at window>=8).
isa::Program poll_job() { return isa::Assembler::assemble("GET r1\nGET r7\n"); }

/// Aggregate throughput at `state.range(0)` shards with a transport
/// window of `state.range(1)` programs in flight per shard.  Every
/// response is compared against the reference model — a mismatch aborts
/// the bench.
void BM_FarmThroughput(benchmark::State& state) {
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const std::size_t window = static_cast<std::size_t>(state.range(1));
  host::FarmConfig fc;
  fc.shards = shards;
  fc.transport.window = window;
  fc.queue_capacity = 2 * kJobsPerIteration;
  host::Farm farm(fc);

  std::vector<isa::Program> programs;
  std::vector<std::vector<msg::Response>> expected;
  for (std::uint64_t s = 0; s < kJobSeeds; ++s) {
    programs.push_back(farm_job(0xfa12'0000 + s));
    expected.push_back(
        host::ReferenceModel(top::SystemConfig{}.rtm).run(programs.back()));
  }

  std::uint64_t jobs = 0;
  for (auto _ : state) {
    std::vector<std::future<std::vector<msg::Response>>> futures;
    futures.reserve(kJobsPerIteration);
    for (std::size_t i = 0; i < kJobsPerIteration; ++i) {
      futures.push_back(farm.submit(programs[i % kJobSeeds]));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      if (futures[i].get() != expected[i % kJobSeeds]) {
        state.SkipWithError("farm response diverged from ReferenceModel");
        return;
      }
    }
    jobs += futures.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["window"] = static_cast<double>(window);
  state.counters["jobs/s"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

/// Windowed pipelining win on a read-mostly session: one setup job PUTs
/// r1..r7, then every measured job is a two-GET status poll on that
/// session, submitted through submit_async so no producer thread parks in
/// future::get between jobs.  window=1 is call-and-wait (each poll pays a
/// full link round trip); deeper windows overlap issue with response
/// return.  This is the row CI's perf-smoke asserts the windowed speedup
/// on.
void BM_FarmReadStream(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const std::size_t kPollsPerIteration = 256;
  host::FarmConfig fc;
  fc.shards = 1;
  fc.transport.window = window;
  fc.queue_capacity = 2 * kPollsPerIteration;
  host::Farm farm(fc);
  const host::Farm::SessionId session = farm.create_session();

  Xoshiro256 rng(0xfa12'bead);
  std::string setup_src;
  for (int r = 1; r <= 7; ++r) {
    setup_src += "PUT r" + std::to_string(r) + ", #" +
                 std::to_string(rng.below(1u << 20)) + "\n";
  }
  const isa::Program setup = isa::Assembler::assemble(setup_src);
  const isa::Program poll = poll_job();

  // Expected responses of one poll: the GETs return the setup values, and
  // the transport renumbers each job's responses from 0 in program order.
  host::ReferenceModel model(top::SystemConfig{}.rtm);
  model.run(setup);
  std::vector<msg::Response> expected;
  for (int r : {1, 7}) {
    msg::Response resp;
    resp.type = msg::Response::Type::kData;
    resp.seq = static_cast<std::uint16_t>(expected.size());
    resp.payload = model.reg(static_cast<isa::RegNum>(r));
    expected.push_back(resp);
  }
  farm.submit(session, setup).get();

  std::uint64_t jobs = 0;
  std::mutex m;
  std::condition_variable cv;
  for (auto _ : state) {
    std::size_t done = 0;
    std::size_t wrong = 0;
    auto on_done = [&](std::vector<msg::Response> rs, std::exception_ptr err) {
      std::lock_guard<std::mutex> lk(m);
      if (err || rs != expected) {
        ++wrong;
      }
      if (++done == kPollsPerIteration) {
        cv.notify_one();
      }
    };
    for (std::size_t i = 0; i < kPollsPerIteration; ++i) {
      farm.submit_async(session, poll, on_done);
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kPollsPerIteration; });
    if (wrong != 0) {
      state.SkipWithError("poll stream diverged from the setup registers");
      return;
    }
    jobs += kPollsPerIteration;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["window"] = static_cast<double>(window);
  state.counters["jobs/s"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

/// Experiment E16: tiny-program coalescing.  Twelve sessions each own a
/// disjoint register pair and stream three-instruction jobs
/// (PUT / ADD / GET — one write barrier per job).  Uncoalesced, the
/// cross-program write barrier serialises the window at about one link
/// round trip per job no matter how deep it is; coalesced, members from
/// different sessions are register-disjoint, the per-register frame
/// barrier finds no conflicts, and one sequence-numbered frame carries
/// coalesce_max_programs jobs back to back.  Reported alongside wall-clock
/// jobs/s: cycles_per_job = farm.shard_cycles / jobs, the deterministic
/// simulated-cycle cost CI's perf-smoke step asserts the coalescing win
/// on.
void BM_FarmTinyProgramStream(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  const std::size_t coalesce = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kSessions = 12;
  constexpr std::size_t kTinyJobsPerIteration = 192;
  host::FarmConfig fc;
  fc.shards = 1;
  fc.transport.window = window;
  fc.coalesce_max_programs = coalesce;
  fc.coalesce_max_words = 512;
  fc.coalesce_flush_cycles = 64;
  fc.queue_capacity = 2 * kTinyJobsPerIteration;
  host::Farm farm(fc);

  struct Sess {
    host::Farm::SessionId id;
    isa::Program program;
    std::vector<msg::Response> expected;
  };
  Xoshiro256 rng(0xfa12'71e9);
  std::vector<Sess> sessions;
  for (std::size_t i = 0; i < kSessions; ++i) {
    // Session i owns registers r(2i+1)/r(2i+2): no two sessions' jobs
    // touch a common register.
    const int a = static_cast<int>(1 + 2 * i);
    const int b = a + 1;
    Sess s;
    s.id = farm.create_session();
    s.program = isa::Assembler::assemble(
        "PUT r" + std::to_string(a) + ", #" +
        std::to_string(rng.below(1u << 20)) + "\nADD r" + std::to_string(b) +
        ", r" + std::to_string(a) + ", r" + std::to_string(a) + "\nGET r" +
        std::to_string(b));
    s.expected = host::ReferenceModel(top::SystemConfig{}.rtm).run(s.program);
    sessions.push_back(std::move(s));
  }

  std::uint64_t jobs = 0;
  std::mutex m;
  std::condition_variable cv;
  for (auto _ : state) {
    std::size_t done = 0;
    std::size_t wrong = 0;
    auto on_done = [&](std::size_t who) {
      return [&, who](std::vector<msg::Response> rs, std::exception_ptr err) {
        std::lock_guard<std::mutex> lk(m);
        if (err || rs != sessions[who].expected) {
          ++wrong;
        }
        if (++done == kTinyJobsPerIteration) {
          cv.notify_one();
        }
      };
    };
    for (std::size_t i = 0; i < kTinyJobsPerIteration; ++i) {
      const std::size_t who = i % kSessions;
      farm.submit_async(sessions[who].id, sessions[who].program,
                        on_done(who));
    }
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return done == kTinyJobsPerIteration; });
    if (wrong != 0) {
      state.SkipWithError("tiny-program stream diverged from ReferenceModel");
      return;
    }
    jobs += kTinyJobsPerIteration;
  }
  farm.shutdown();  // exact counters (and the final shard clock) publish
  const std::uint64_t cycles = farm.counters().get("farm.shard_cycles");
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs));
  state.counters["window"] = static_cast<double>(window);
  state.counters["coalesce"] = static_cast<double>(coalesce);
  state.counters["cycles_per_job"] =
      jobs > 0 ? static_cast<double>(cycles) / static_cast<double>(jobs) : 0.0;
  state.counters["jobs/s"] =
      benchmark::Counter(static_cast<double>(jobs), benchmark::Counter::kIsRate);
}

void register_shard_sweep() {
  auto* b = benchmark::RegisterBenchmark("BM_FarmThroughput", BM_FarmThroughput)
                ->Unit(benchmark::kMillisecond)
                ->UseRealTime()
                ->MeasureProcessCPUTime();
  // Window sweep at one shard: pins the pipelining win over the window=1
  // call-and-wait baseline without thread-scaling noise.
  for (long w : {1, 2, 4, 8, 16, 32}) {
    b->Args({1, w});
  }
  // Shard sweep (powers of two up to the core count, always covering at
  // least 1/2/4 shards so the multi-shard paths are exercised even on
  // small runners), at both the baseline and a deep window — shows the
  // two axes compose.
  const unsigned hw = std::max(4u, std::thread::hardware_concurrency());
  for (unsigned s = 2; s <= hw; s *= 2) {
    b->Args({static_cast<long>(s), 1});
    b->Args({static_cast<long>(s), 16});
  }
  if ((hw & (hw - 1)) != 0) {
    b->Args({static_cast<long>(hw), 1});  // the exact core count too
    b->Args({static_cast<long>(hw), 16});
  }

  auto* rs = benchmark::RegisterBenchmark("BM_FarmReadStream", BM_FarmReadStream)
                 ->Unit(benchmark::kMillisecond)
                 ->UseRealTime()
                 ->MeasureProcessCPUTime();
  for (long w : {1, 2, 4, 8, 16, 32}) {
    rs->Arg(w);
  }

  auto* ts = benchmark::RegisterBenchmark("BM_FarmTinyProgramStream",
                                          BM_FarmTinyProgramStream)
                 ->Unit(benchmark::kMillisecond)
                 ->UseRealTime()
                 ->MeasureProcessCPUTime();
  // Uncoalesced baselines across window depths (the write barrier keeps
  // them all near one round trip per job), then coalesced rows.
  for (long w : {1, 8, 32}) {
    ts->Args({w, 1});
  }
  ts->Args({4, 4});
  ts->Args({4, 16});
  ts->Args({8, 16});
}

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  fpgafu::bench::section(
      "E10", "farm throughput scaling (programs/s vs shards x window)");
  fpgafu::bench::note(
      "every job's responses are checked bit-identical against "
      "host::ReferenceModel; items_per_second is aggregate programs/s");
  fpgafu::bench::note("hardware_concurrency = " +
                      std::to_string(std::thread::hardware_concurrency()));
  register_shard_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
