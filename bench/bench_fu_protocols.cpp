// Experiment E3 (DESIGN.md §5): functional-unit protocol skeletons.
//
// Reproduces thesis §3.2.2 / §2.3.4 quantitatively:
//   * minimal skeleton accepts an instruction every SECOND cycle;
//   * combinational ack-forwarding reaches ONE instruction per cycle;
//   * the FSM skeleton costs (1 + execute_cycles + 1) per instruction;
//   * the pipelined skeleton sustains one per cycle with latency = depth+1.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "fu/stateless_units.hpp"
#include "isa/arith.hpp"
#include "util/table.hpp"

// The FuDriver testbench is part of the test support headers; the bench
// reuses it as its stimulus generator.
#include "../tests/support/fu_harness.hpp"

namespace {

using namespace fpgafu;
using fpgafu::testing::FuDriver;

struct ProtocolResult {
  double cycles_per_op;
  std::uint64_t latency;
};

ProtocolResult measure(fu::Skeleton skeleton, int ops) {
  sim::Simulator sim;
  fu::StatelessConfig cfg;
  cfg.width = 32;
  cfg.skeleton = skeleton;
  cfg.execute_cycles = 1;
  cfg.pipeline_depth = 3;
  cfg.fifo_capacity = 8;
  auto unit = fu::make_arithmetic_unit(sim, cfg);
  FuDriver drv(sim, "drv", unit->ports);
  fu::FuRequest req;
  req.variety = isa::arith::variety(isa::arith::Op::kAdd);
  req.operand1 = 1;
  req.operand2 = 2;
  for (int i = 0; i < ops; ++i) {
    drv.enqueue(req);
  }
  const auto cycles = sim.run_until(
      [&] { return drv.completions().size() == static_cast<std::size_t>(ops); },
      1000000);
  const std::uint64_t latency =
      drv.completions().front().cycle - drv.dispatch_cycles().front();
  return {static_cast<double>(cycles) / ops, latency};
}

const char* skeleton_name(fu::Skeleton s) {
  switch (s) {
    case fu::Skeleton::kMinimal: return "minimal (Fig. 5)";
    case fu::Skeleton::kMinimalFwd: return "minimal + ack forwarding";
    case fu::Skeleton::kFsm: return "FSM, area-optimised (Fig. 6)";
    case fu::Skeleton::kPipelined: return "pipelined + FIFOs";
  }
  return "?";
}

void print_protocol_table() {
  bench::section("E3", "Functional-unit skeletons: sustained throughput and "
                       "latency (1000 back-to-back ADDs)");
  TextTable t({"skeleton", "cycles/op", "latency (cycles)",
               "paper expectation"});
  const char* expectation[] = {
      "1 op per 2 cycles (3.2.2)", "1 op per cycle (3.2.2 forwarding)",
      "1 + exec + 1 cycles", "1 op per cycle, latency depth+1"};
  int i = 0;
  for (const auto s : {fu::Skeleton::kMinimal, fu::Skeleton::kMinimalFwd,
                       fu::Skeleton::kFsm, fu::Skeleton::kPipelined}) {
    const ProtocolResult r = measure(s, 1000);
    t.add_row({skeleton_name(s), format_fixed(r.cycles_per_op, 3),
               std::to_string(r.latency), expectation[i++]});
  }
  t.print(std::cout);
}

void print_initiation_interval_table() {
  bench::section("E3b", "Pipelined skeleton: initiation interval sweep "
                        "(\"accept a new instruction every kth clock cycle\")");
  TextTable t({"initiation interval k", "cycles/op"});
  for (const std::uint32_t k : {1u, 2u, 3u, 4u}) {
    sim::Simulator sim;
    fu::StatelessConfig cfg;
    cfg.skeleton = fu::Skeleton::kPipelined;
    cfg.pipeline_depth = 3;
    cfg.fifo_capacity = 8;
    cfg.initiation_interval = k;
    auto unit = fu::make_arithmetic_unit(sim, cfg);
    FuDriver drv(sim, "drv", unit->ports);
    fu::FuRequest req;
    req.variety = isa::arith::variety(isa::arith::Op::kAdd);
    for (int i = 0; i < 400; ++i) {
      drv.enqueue(req);
    }
    const auto cycles = sim.run_until(
        [&] { return drv.completions().size() == 400; }, 100000);
    t.add_row({std::to_string(k),
               format_fixed(static_cast<double>(cycles) / 400, 3)});
  }
  t.print(std::cout);
}

void BM_SkeletonSimThroughput(benchmark::State& state) {
  const auto skeleton = static_cast<fu::Skeleton>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure(skeleton, 200));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_SkeletonSimThroughput)
    ->Arg(static_cast<int>(fu::Skeleton::kMinimal))
    ->Arg(static_cast<int>(fu::Skeleton::kMinimalFwd))
    ->Arg(static_cast<int>(fu::Skeleton::kFsm))
    ->Arg(static_cast<int>(fu::Skeleton::kPipelined));

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_protocol_table();
  print_initiation_interval_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
