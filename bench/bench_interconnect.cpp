// Experiment E6 (DESIGN.md §5): host-link sensitivity.
//
// The paper §III: "The speed of the system is determined by two factors:
// the latency of the communication interface to the host computer, and the
// clock speed of the FPGA. ... only a very slow connection from the FPGA
// board to the processor was available.  However, this is not a limitation
// of the approach: there are FPGAs that are tightly integrated with
// processors, offering extremely high transfer rates."
//
// This harness quantifies that spectrum: operation round-trip latency and
// burst throughput across three transceiver models.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "host/coprocessor.hpp"
#include "host/reliable_transport.hpp"
#include "isa/arith.hpp"
#include "isa/assembler.hpp"
#include "isa/program.hpp"
#include "isa/rtm_ops.hpp"
#include "top/system.hpp"
#include "util/table.hpp"

namespace {

using namespace fpgafu;

const msg::LinkPreset kPresets[] = {msg::kTightLink, msg::kBurstLink,
                                    msg::kSerialLink};

top::SystemConfig config_for(const msg::LinkPreset& preset) {
  top::SystemConfig cfg;
  cfg.link_down = preset.timing;
  cfg.link_up = preset.timing;
  return cfg;
}

/// One accelerated operation, end to end: PUT two operands, ADD, GET.
std::uint64_t round_trip_cycles(const msg::LinkPreset& preset) {
  top::System sys(config_for(preset));
  host::Coprocessor copro(sys);
  const auto start = sys.simulator().cycle();
  copro.call(isa::Assembler::assemble(R"(
    PUT r1, #3
    PUT r2, #4
    ADD r3, r1, r2
    GET r3
  )"));
  return sys.simulator().cycle() - start;
}

/// Sustained burst: 256 ADDs + one final GET.
std::uint64_t burst_cycles(const msg::LinkPreset& preset, int ops) {
  top::System sys(config_for(preset));
  host::Coprocessor copro(sys);
  isa::Program p;
  p.emit_put(1, 1);
  p.emit_put(2, 2);
  for (int i = 0; i < ops; ++i) {
    isa::Instruction add;
    add.function = isa::fc::kArith;
    add.variety = isa::arith::variety(isa::arith::Op::kAdd);
    add.dst1 = static_cast<isa::RegNum>(3 + (i % 8));
    add.src1 = 1;
    add.src2 = 2;
    p.emit(add);
  }
  isa::Instruction get;
  get.function = isa::fc::kRtm;
  get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
  get.src1 = 3;
  p.emit(get);
  const auto start = sys.simulator().cycle();
  copro.call(p);
  return sys.simulator().cycle() - start;
}

void print_tables() {
  bench::section("E6", "Interconnect models: single-operation round trip "
                       "(PUT, PUT, ADD, GET)");
  TextTable t({"link", "latency/word", "interval/word", "round-trip cycles",
               "us @ 50 MHz"});
  for (const auto& preset : kPresets) {
    const std::uint64_t c = round_trip_cycles(preset);
    t.add_row({preset.name, std::to_string(preset.timing.latency),
               std::to_string(preset.timing.interval), std::to_string(c),
               format_fixed(static_cast<double>(c) / 50.0, 2)});
  }
  t.print(std::cout);

  bench::section("E6b", "Interconnect models: burst of 256 ADDs");
  TextTable t2({"link", "total cycles", "cycles/op", "slowdown vs tight"});
  const int ops = 256;
  const std::uint64_t tight = burst_cycles(msg::kTightLink, ops);
  for (const auto& preset : kPresets) {
    const std::uint64_t c = burst_cycles(preset, ops);
    t2.add_row({preset.name, std::to_string(c),
                format_fixed(static_cast<double>(c) / ops, 2),
                format_fixed(static_cast<double>(c) / static_cast<double>(tight),
                             2)});
  }
  t2.print(std::cout);
  bench::note("The serial prototyping-board link dominates end-to-end cost;");
  bench::note("a tight fabric makes the FPGA pipeline itself the limit —");
  bench::note("exactly the paper's discussion.");
}

/// Move 64 words into registers, scalar PUTs vs one PUTV burst.
std::uint64_t transfer_cycles(const msg::LinkPreset& preset, bool burst) {
  top::SystemConfig cfg;
  cfg.rtm.data_regs = 80;
  cfg.link_down = preset.timing;
  cfg.link_up = preset.timing;
  top::System sys(cfg);
  host::Coprocessor copro(sys);
  std::vector<isa::Word> values(64);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = i * 3 + 1;
  }
  isa::Program p;
  if (burst) {
    p.emit_put_vec(1, values);
  } else {
    for (std::size_t i = 0; i < values.size(); ++i) {
      p.emit_put(static_cast<isa::RegNum>(1 + i), values[i]);
    }
  }
  isa::Instruction sync;
  sync.function = isa::fc::kRtm;
  sync.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kSync);
  p.emit(sync);
  const auto start = sys.simulator().cycle();
  copro.call(p);
  return sys.simulator().cycle() - start;
}

void print_burst_table() {
  bench::section("E6c", "Burst transfers: loading 64 registers with scalar "
                        "PUTs vs one PUTV packet");
  TextTable t({"link", "scalar cycles", "burst cycles", "speedup"});
  for (const auto& preset : kPresets) {
    const std::uint64_t scalar = transfer_cycles(preset, false);
    const std::uint64_t burst = transfer_cycles(preset, true);
    t.add_row({preset.name, std::to_string(scalar), std::to_string(burst),
               format_fixed(static_cast<double>(scalar) /
                                static_cast<double>(burst),
                            2)});
  }
  t.print(std::cout);
  bench::note("A burst halves the stream words per register (one header");
  bench::note("amortised over the packet) — the \"packets of data\" framing");
  bench::note("the paper describes for host transfers.");
}

/// 64 compute+readback operations issued in batches of `batch` before
/// waiting: measures how much link latency the asynchronous submit/poll
/// API hides.
std::uint64_t batched_cycles(const msg::LinkPreset& preset, int batch) {
  top::System sys(config_for(preset));
  host::Coprocessor copro(sys);
  copro.write_reg(1, 21);
  copro.write_reg(2, 2);
  const int total = 64;
  std::uint64_t received = 0;
  const auto start = sys.simulator().cycle();
  for (int issued = 0; issued < total; issued += batch) {
    isa::Program p;
    for (int k = 0; k < batch; ++k) {
      isa::Instruction add;
      add.function = isa::fc::kArith;
      add.variety = isa::arith::variety(isa::arith::Op::kAdd);
      add.dst1 = static_cast<isa::RegNum>(3 + (k % 8));
      add.dst_flag = static_cast<isa::RegNum>(k % 4);
      add.src1 = 1;
      add.src2 = 2;
      p.emit(add);
      isa::Instruction get;
      get.function = isa::fc::kRtm;
      get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
      get.src1 = add.dst1;
      p.emit(get);
    }
    copro.submit(p);
    // Wait for this batch's responses before issuing the next (the
    // synchronous pattern a naive driver uses).
    const std::uint64_t want = received + static_cast<std::uint64_t>(batch);
    sys.simulator().run_until(
        [&] {
          while (copro.poll()) {
            ++received;
          }
          return received >= want;
        },
        1'000'000);
  }
  return sys.simulator().cycle() - start;
}

void print_batching_table() {
  bench::section("E6d", "Hiding link latency: 64 ADD+GET pairs, waiting for "
                        "responses every `batch` operations (burst link, "
                        "latency 64)");
  TextTable t({"batch size", "total cycles", "cycles/op"});
  for (const int batch : {1, 4, 16, 64}) {
    const std::uint64_t c = batched_cycles(msg::kBurstLink, batch);
    t.add_row({std::to_string(batch), std::to_string(c),
               format_fixed(static_cast<double>(c) / 64.0, 1)});
  }
  t.print(std::cout);
  bench::note("Synchronous one-at-a-time use pays the full round trip per");
  bench::note("operation; pipelined submission amortises it — the framework");
  bench::note("treats the FPGA \"like a fast I/O device\", and I/O devices");
  bench::note("want queue depth.");
}

/// 64 ADD+GET pairs through the reliable transport over a lossy link:
/// returns {cycles, retries} for the fault rate (applied equally to
/// upstream drop, corruption and duplication).
struct FaultRunResult {
  std::uint64_t cycles;
  std::uint64_t retries;
};

FaultRunResult faulted_cycles(std::uint32_t fault_ppm) {
  top::SystemConfig cfg;
  if (fault_ppm != 0) {
    msg::FaultConfig f;
    f.seed = 0xbe7c;
    f.up.drop_ppm = fault_ppm;
    f.up.corrupt_ppm = fault_ppm;
    f.up.duplicate_ppm = fault_ppm;
    cfg.link_faults = f;
  }
  top::System sys(cfg);
  host::Coprocessor copro(sys);
  host::TransportConfig tcfg;
  tcfg.response_timeout = 500;
  host::ReliableTransport transport(copro, tcfg);

  isa::Program p;
  p.emit_put(1, 21);
  p.emit_put(2, 2);
  for (int k = 0; k < 64; ++k) {
    isa::Instruction add;
    add.function = isa::fc::kArith;
    add.variety = isa::arith::variety(isa::arith::Op::kAdd);
    add.dst1 = static_cast<isa::RegNum>(3 + (k % 8));
    add.src1 = 1;
    add.src2 = 2;
    p.emit(add);
    isa::Instruction get;
    get.function = isa::fc::kRtm;
    get.variety = static_cast<isa::VarietyCode>(isa::RtmOp::kGet);
    get.src1 = add.dst1;
    p.emit(get);
  }
  const auto start = sys.simulator().cycle();
  transport.call(p);
  return {sys.simulator().cycle() - start,
          transport.counters().get("transport.retries")};
}

void print_fault_table() {
  bench::section("E6e", "Reliable transport goodput vs link fault rate "
                        "(64 ADD+GET pairs; rate applies to upstream drop, "
                        "corruption and duplication each)");
  TextTable t({"fault rate", "total cycles", "retries", "ops/kcycle",
               "slowdown vs clean"});
  const FaultRunResult clean = faulted_cycles(0);
  for (const std::uint32_t ppm : {0u, 10'000u, 20'000u, 50'000u}) {
    const FaultRunResult r = faulted_cycles(ppm);
    t.add_row({format_fixed(static_cast<double>(ppm) / 10'000.0, 1) + "%",
               std::to_string(r.cycles), std::to_string(r.retries),
               format_fixed(64.0 * 1000.0 / static_cast<double>(r.cycles), 2),
               format_fixed(static_cast<double>(r.cycles) /
                                static_cast<double>(clean.cycles),
                            2)});
  }
  t.print(std::cout);
  bench::note("Retries resend whole instructions, so goodput degrades");
  bench::note("faster than the raw fault rate: one lost frame costs a");
  bench::note("timeout or a gap-detected round trip, not just one word.");
}

void BM_RoundTrip(benchmark::State& state) {
  const auto& preset = kPresets[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(round_trip_cycles(preset));
  }
}
BENCHMARK(BM_RoundTrip)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_tables();
  print_burst_table();
  print_batching_table();
  print_fault_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
