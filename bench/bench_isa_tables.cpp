// Experiment E1/E2 (DESIGN.md §5): regenerate the instruction-set encoding
// tables of the stateless case-study units — thesis Table 3.1 (arithmetic
// unit) and Table 3.2 (logic unit; reconstructed as LUT2 truth tables) —
// plus encode/decode/assembler throughput measurements.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"
#include "isa/arith.hpp"
#include "isa/assembler.hpp"
#include "util/bits.hpp"
#include "isa/instruction.hpp"
#include "isa/fp32.hpp"
#include "isa/logic.hpp"
#include "isa/muldiv.hpp"
#include "isa/shift.hpp"
#include "isa/trig.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace fpgafu;

void print_table_31() {
  bench::section("Table 3.1", "Encoding of arithmetic instructions "
                              "(function code 0x10; variety control bits)");
  TextTable t({"op", "variety", "use_carry", "fixed_carry", "output_data",
               "first_zero", "second_zero", "compl_second"});
  using namespace isa::arith;
  for (const Op op : kAllOps) {
    const isa::VarietyCode v = variety(op);
    auto b = [&](unsigned pos) {
      return std::string(bits::bit(v, pos) ? "1" : "0");
    };
    t.add_row({std::string(to_string(op)), format_bits(v, 6),
               b(vc::kUseCarry), b(vc::kFixedCarry), b(vc::kOutputData),
               b(vc::kFirstZero), b(vc::kSecondZero),
               b(vc::kComplementSecond)});
  }
  t.print(std::cout);
  bench::note("All nine operations derive from one adder + input muxing;");
  bench::note("the unit contains no per-instruction special cases.");
}

void print_table_32() {
  bench::section("Table 3.2", "Encoding of logic instructions "
                              "(function code 0x11; LUT2 truth-table nibble)");
  TextTable t({"op", "variety", "truth_table[3:0]", "semantics"});
  using namespace isa::logic;
  const char* semantics[] = {"a & b",   "a | b",  "a ^ b",  "~(a & b)",
                             "~(a | b)", "~(a ^ b)", "~b",  "a & ~b",
                             "a | ~b",  "a",      "0",      "all ones"};
  int i = 0;
  for (const Op op : kAllOps) {
    t.add_row({std::string(to_string(op)), format_bits(variety(op), 5),
               format_bits(truth_table(op), 4), semantics[i++]});
  }
  t.print(std::cout);
}

void print_muldiv_table() {
  bench::section("Table E2c", "Encoding of multiply/divide instructions "
                              "(function code 0x13; multi-cycle unit)");
  TextTable t({"op", "variety", "semantics", "error cases"});
  using namespace isa::muldiv;
  const char* semantics[] = {
      "low(a*b)",        "high(a*b) unsigned", "high(a*b) signed",
      "a / b unsigned",  "a % b unsigned",     "a / b signed",
      "a % b signed",    "quotient AND remainder (dual output)"};
  const char* errors[] = {"-",   "-",           "-",
                          "b=0", "b=0",         "b=0, MIN/-1",
                          "b=0, MIN/-1", "b=0, dst2==dst1"};
  int i = 0;
  for (const Op op : kAllOps) {
    t.add_row({std::string(to_string(op)), format_bits(variety(op), 5),
               semantics[i], errors[i]});
    ++i;
  }
  t.print(std::cout);
  bench::note("Division by zero sets the error flag: \"the contents of the");
  bench::note("destination registers (if any) are undefined by");
  bench::note("specification\" (thesis 3.2.1).");
}

void print_fp32_table() {
  bench::section("Table E2d", "Encoding of floating-point instructions "
                              "(function code 0x14; IEEE-754 single)");
  TextTable t({"op", "variety", "semantics"});
  using namespace isa::fp32;
  const char* semantics[] = {"a + b (RNE)", "a - b (RNE)", "a * b (RNE)",
                             "a / b (RNE)",
                             "flags only: Z=eq, N=lt, E=unordered"};
  int i = 0;
  for (const Op op : kAllOps) {
    t.add_row({std::string(to_string(op)), format_bits(variety(op), 5),
               semantics[i++]});
  }
  t.print(std::cout);
}

void print_trig_table() {
  bench::section("Table E2e", "Encoding of trigonometric instructions "
                              "(function code 0x15; CORDIC unit)");
  TextTable t({"op", "variety", "semantics"});
  using namespace isa::trig;
  const char* semantics[] = {"Q1.30 sin of BAM angle",
                             "Q1.30 cos of BAM angle"};
  int i = 0;
  for (const Op op : kAllOps) {
    t.add_row({std::string(to_string(op)), format_bits(variety(op), 5),
               semantics[i++]});
  }
  t.print(std::cout);
  bench::note("The paper's third named stateless family: \"trigonometric");
  bench::note("function calculators\" (IV-A).  30 shift-add rotations, one");
  bench::note("per clock on the FSM skeleton; no multiplier.");
}

void print_shift_table() {
  bench::section("Table E2b", "Encoding of shift instructions "
                              "(function code 0x12; extension unit)");
  TextTable t({"op", "variety", "semantics"});
  using namespace isa::shift;
  const char* semantics[] = {"a << n", "a >> n (logical)",
                             "a >> n (arithmetic)", "rotate left",
                             "rotate right"};
  int i = 0;
  for (const Op op : kAllOps) {
    t.add_row({std::string(to_string(op)), format_bits(variety(op), 5),
               semantics[i++]});
  }
  t.print(std::cout);
}

// --- Microbenchmarks ---------------------------------------------------------

void BM_InstructionEncode(benchmark::State& state) {
  isa::Instruction inst;
  inst.function = isa::fc::kArith;
  inst.variety = isa::arith::variety(isa::arith::Op::kAdc);
  inst.dst1 = 3;
  inst.src1 = 1;
  inst.src2 = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst.encode());
  }
}
BENCHMARK(BM_InstructionEncode);

void BM_InstructionDecode(benchmark::State& state) {
  Xoshiro256 rng(1);
  const isa::Word w = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::Instruction::decode(w));
  }
}
BENCHMARK(BM_InstructionDecode);

void BM_ArithEvaluate(benchmark::State& state) {
  const auto v = isa::arith::variety(isa::arith::Op::kSbb);
  Xoshiro256 rng(2);
  const isa::Word a = rng.next(), b = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::arith::evaluate(v, a, b, 1, 32));
  }
}
BENCHMARK(BM_ArithEvaluate);

void BM_AssembleLine(benchmark::State& state) {
  for (auto _ : state) {
    isa::Program p;
    isa::Assembler::assemble_line("ADC r3, r1, r2, f1, f2", p);
    benchmark::DoNotOptimize(p.words().data());
  }
}
BENCHMARK(BM_AssembleLine);

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_table_31();
  print_table_32();
  print_shift_table();
  print_muldiv_table();
  print_fp32_table();
  print_trig_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
