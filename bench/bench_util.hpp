#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

/// Shared helpers for the benchmark/reproduction harness.  Each bench
/// binary regenerates its experiment's table(s) (see DESIGN.md §5) before
/// running its google-benchmark timings.
namespace fpgafu::bench {

/// Build type of the *bench binary* (not of the installed google-benchmark
/// library, whose self-reported `library_build_type` reflects how the
/// distro package was compiled — on Debian's libbenchmark that is "debug"
/// regardless of our flags).  NDEBUG is what CMake's Release/RelWithDebInfo
/// configurations define; measuring without it is measuring the wrong
/// program.
#ifdef NDEBUG
inline constexpr const char kBuildType[] = "release";
#else
inline constexpr const char kBuildType[] = "debug";
#endif

/// Mandatory first call in every bench main(), before
/// benchmark::Initialize:
///  * refuses to run a debug (non-NDEBUG) build unless `--allow-debug` is
///    on the command line — perf numbers from unoptimised builds are noise,
///    and a silently-debug bench is exactly how the perf trajectory went
///    wrong once already;
///  * strips `--allow-debug` from argv so google-benchmark never sees it;
///  * records the binary's actual build type and the machine's
///    hardware_concurrency in the benchmark context, so every BENCH_*.json
///    carries both (bench/collect.sh asserts on them).
inline void init(int* argc, char** argv) {
  bool allow_debug = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--allow-debug") == 0) {
      allow_debug = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (std::strcmp(kBuildType, "debug") == 0 && !allow_debug) {
    std::fprintf(stderr,
                 "error: this bench binary was compiled without NDEBUG "
                 "(build type: debug).\n"
                 "Performance numbers from unoptimised builds are noise; "
                 "build with\n  cmake -DCMAKE_BUILD_TYPE=Release\n"
                 "(bench/collect.sh does this for you) or pass "
                 "--allow-debug to run anyway.\n");
    std::exit(2);
  }
  benchmark::AddCustomContext("fpgafu_build_type", kBuildType);
  benchmark::AddCustomContext(
      "hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
}

inline void section(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace fpgafu::bench
