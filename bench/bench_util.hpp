#pragma once

#include <cstdio>
#include <string>

/// Shared helpers for the benchmark/reproduction harness.  Each bench
/// binary regenerates its experiment's table(s) (see DESIGN.md §5) before
/// running its google-benchmark timings.
namespace fpgafu::bench {

inline void section(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace fpgafu::bench
