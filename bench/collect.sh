#!/usr/bin/env bash
# Collect the checked-in benchmark JSON artifacts (BENCH_*.json at the
# repo root) from a built tree.  CI's perf-smoke step runs the same
# binaries with the same flags; regenerate these after a perf-relevant
# change and commit the result alongside it.
#
# Usage: bench/collect.sh [build-dir]      (default: build)
set -euo pipefail

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

for b in bench_sim_kernel bench_farm; do
  bin="$ROOT/$BUILD/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found — build the bench targets first:" >&2
    echo "  cmake --build $BUILD -j --target $b" >&2
    exit 1
  fi
  out="$ROOT/BENCH_${b#bench_}.json"
  echo "== $b -> ${out#"$ROOT"/}"
  "$bin" --benchmark_out="$out" --benchmark_out_format=json
done
