#!/usr/bin/env bash
# Collect the checked-in benchmark JSON artifacts (BENCH_*.json at the
# repo root).  CI's perf-smoke step runs the same binaries with the same
# flags; regenerate these after a perf-relevant change and commit the
# result alongside it.
#
# This script OWNS the build it measures: it configures and builds a
# dedicated Release tree (default: build-bench/) rather than trusting
# whatever ./build happens to contain.  The perf trajectory was once
# polluted by numbers from an unoptimised tree that nothing ever
# checked; now three layers refuse to let that happen again:
#   1. this script configures -DCMAKE_BUILD_TYPE=Release;
#   2. every bench binary self-reports its build type (NDEBUG-derived)
#      in the JSON context as `fpgafu_build_type` and exits(2) when it
#      was compiled without NDEBUG, unless passed --allow-debug;
#   3. the post-processing below asserts `library_build_type` ==
#      "release" in every artifact it writes.
#
# Note on `library_build_type`: google-benchmark fills that field from
# how the *benchmark library* was compiled, and distro packages (e.g.
# Debian's libbenchmark) often ship it as "debug" no matter how our
# code was built.  Since what we care about is the build type of the
# code under test, the field is normalised from the binary's own
# `fpgafu_build_type`; the library's raw answer is preserved as
# `benchmark_library_build_type`.
#
# Usage: bench/collect.sh [build-dir]      (default: build-bench)
set -euo pipefail

BUILD="${1:-build-bench}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCHES=(bench_sim_kernel bench_farm bench_algod bench_hpcc)

# Refuse to take over a tree that is configured as something else —
# reconfiguring it behind the user's back would silently flip their dev
# tree to Release with tests/examples off.
if [ -f "$ROOT/$BUILD/CMakeCache.txt" ]; then
  ACTUAL="$(grep -E '^CMAKE_BUILD_TYPE:' "$ROOT/$BUILD/CMakeCache.txt" | cut -d= -f2)"
  if [ "$ACTUAL" != "Release" ]; then
    echo "error: $BUILD/ already exists and is configured as '$ACTUAL', not Release." >&2
    echo "This script owns the tree it measures; pass a fresh directory" >&2
    echo "(default: build-bench) instead of a development build tree." >&2
    exit 1
  fi
fi

echo "== configuring $BUILD (Release)"
cmake -B "$ROOT/$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DFPGAFU_BUILD_TESTS=OFF \
  -DFPGAFU_BUILD_EXAMPLES=OFF >/dev/null

ACTUAL="$(grep -E '^CMAKE_BUILD_TYPE:' "$ROOT/$BUILD/CMakeCache.txt" | cut -d= -f2)"
if [ "$ACTUAL" != "Release" ]; then
  echo "error: $BUILD ended up configured as '$ACTUAL', not Release." >&2
  echo "Remove $BUILD/ (or pass a different build dir) and rerun." >&2
  exit 1
fi

echo "== building ${BENCHES[*]}"
cmake --build "$ROOT/$BUILD" -j "$(nproc)" --target "${BENCHES[@]}" >/dev/null

for b in "${BENCHES[@]}"; do
  bin="$ROOT/$BUILD/bench/$b"
  out="$ROOT/BENCH_${b#bench_}.json"
  echo "== $b -> ${out#"$ROOT"/}"
  "$bin" --benchmark_out="$out" --benchmark_out_format=json

  # Normalise and assert the build-type / machine context (see header).
  python3 - "$out" <<'EOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
ctx = doc["context"]

build_type = ctx.get("fpgafu_build_type")
if build_type != "release":
    sys.exit(f"{path}: bench binary self-reported fpgafu_build_type="
             f"{build_type!r}, expected 'release' — refusing to check in "
             "numbers from an unoptimised build")
if "hardware_concurrency" not in ctx:
    sys.exit(f"{path}: missing hardware_concurrency in benchmark context")

raw = ctx.get("library_build_type")
if raw is not None and raw != build_type:
    ctx["benchmark_library_build_type"] = raw
ctx["library_build_type"] = build_type

with open(path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

print(f"   library_build_type={ctx['library_build_type']} "
      f"hardware_concurrency={ctx['hardware_concurrency']}"
      + (f" (benchmark lib itself built as {raw})" if raw != build_type else ""))
EOF
done
