// Experiment E5 (DESIGN.md §5): the χ-sort scaling claim.
//
// Paper §IV-B: "Each operation takes a fixed number of clock cycles with
// the FPGA; with a CPU each operation requires an iteration that takes time
// proportional to the number of data elements."
//
// The harness measures per-primitive cycle counts on the cycle-accurate
// unit (flat in n) against the modelled software cost (linear in n), then
// whole sorts and selections.

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xsort/algorithm.hpp"
#include "xsort/hw_engine.hpp"
#include "xsort/soft_engine.hpp"

namespace {

using namespace fpgafu;
using namespace fpgafu::xsort;

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) {
    x = rng.below(1u << 20);
  }
  return v;
}

void print_per_op_table() {
  bench::section("E5", "Cycles per chi-sort primitive vs array size "
                       "(hardware flat, software linear)");
  TextTable t({"n", "hw cycles/op", "sw modelled cycles/op", "sw/hw ratio"});
  for (const std::size_t n : {16u, 64u, 256u, 1024u, 4096u}) {
    HwXsortEngine hw({.cells = n, .interval_bits = 16});
    hw.op(XsortOp::kReset, n - 1);
    hw.reset_cost();
    SoftXsortEngine sw({.cells = n, .interval_bits = 16});
    sw.op(XsortOp::kReset, n - 1);
    sw.reset_cost();
    const int reps = 16;
    for (int i = 0; i < reps; ++i) {
      hw.op(XsortOp::kCount);
      sw.op(XsortOp::kCount);
    }
    const double hwc = static_cast<double>(hw.cost_cycles()) / reps;
    const double swc = static_cast<double>(sw.cost_cycles()) / reps;
    t.add_row({std::to_string(n), format_fixed(hwc, 1), format_fixed(swc, 1),
               format_fixed(swc / hwc, 1)});
  }
  t.print(std::cout);
}

void print_sort_table() {
  bench::section("E5b", "Full chi-sort: total cycles, rounds, and the "
                        "software-emulation comparison");
  TextTable t({"n", "rounds", "hw ops", "hw cycles", "hw us @50MHz",
               "sw modelled cycles", "sw/hw"});
  for (const std::size_t n : {16u, 64u, 256u, 1024u}) {
    const auto vals = random_values(n, n * 3 + 1);

    HwXsortEngine hw({.cells = n, .interval_bits = 16});
    XsortAlgorithm algo(hw);
    hw.reset_cost();
    algo.sort(vals);
    const std::uint64_t hw_cycles = hw.cost_cycles();

    SoftXsortEngine sw({.cells = n, .interval_bits = 16});
    XsortAlgorithm salgo(sw);
    sw.reset_cost();
    salgo.sort(vals);
    const std::uint64_t sw_cycles = sw.cost_cycles();

    t.add_row({std::to_string(n), std::to_string(algo.stats().rounds),
               std::to_string(algo.stats().ops), std::to_string(hw_cycles),
               format_fixed(static_cast<double>(hw_cycles) / 50.0, 1),
               std::to_string(sw_cycles),
               format_fixed(static_cast<double>(sw_cycles) /
                                static_cast<double>(hw_cycles),
                            1)});
  }
  t.print(std::cout);
  bench::note("hw cycles grow ~linearly in n (rounds ~ n, fixed cycles per");
  bench::note("round); the software emulation grows ~quadratically — the");
  bench::note("gap widens linearly with n, the paper's headline effect.");
}

void print_selection_table() {
  bench::section("E5c", "Selection (k = n/2): expected O(log n) rounds of "
                        "fixed cycle cost");
  TextTable t({"n", "rounds", "hw cycles", "sw modelled cycles", "sw/hw"});
  for (const std::size_t n : {64u, 256u, 1024u, 4096u}) {
    const auto vals = random_values(n, n + 17);
    HwXsortEngine hw({.cells = n, .interval_bits = 16});
    XsortAlgorithm algo(hw);
    algo.load(vals);
    hw.reset_cost();
    algo.reset_stats();
    algo.select(n / 2);
    const std::uint64_t hw_cycles = hw.cost_cycles();

    SoftXsortEngine sw({.cells = n, .interval_bits = 16});
    XsortAlgorithm salgo(sw);
    salgo.load(vals);
    sw.reset_cost();
    salgo.select(n / 2);
    const std::uint64_t sw_cycles = sw.cost_cycles();

    t.add_row({std::to_string(n), std::to_string(algo.stats().rounds),
               std::to_string(hw_cycles), std::to_string(sw_cycles),
               format_fixed(static_cast<double>(sw_cycles) /
                                static_cast<double>(hw_cycles),
                            1)});
  }
  t.print(std::cout);
}

void print_tree_ablation() {
  bench::section("E5d", "Tree timing ablation (DESIGN.md §6): combinational "
                        "vs registered (pipelined) fold/scan tree");
  TextTable t({"n", "tree depth", "comb. sort cycles", "pipelined sort cycles",
               "cycle overhead"});
  for (const std::size_t n : {64u, 256u, 1024u}) {
    const auto vals = random_values(n, n + 5);
    std::uint64_t cycles[2];
    for (const bool pipelined : {false, true}) {
      HwXsortEngine hw({.cells = n, .interval_bits = 16,
                        .pipelined_tree = pipelined});
      XsortAlgorithm algo(hw);
      hw.reset_cost();
      algo.sort(vals);
      cycles[pipelined ? 1 : 0] = hw.cost_cycles();
    }
    t.add_row({std::to_string(n), std::to_string(bits::clog2(n)),
               std::to_string(cycles[0]), std::to_string(cycles[1]),
               format_fixed(static_cast<double>(cycles[1]) /
                                    static_cast<double>(cycles[0]) -
                                1.0,
                            3)});
  }
  t.print(std::cout);
  bench::note("The registered tree trades ~log2(n) extra cycles per query");
  bench::note("microinstruction for a critical path independent of n — the");
  bench::note("combinational tree's gate chain would otherwise cap the");
  bench::note("achievable clock as the array grows.");
}

void BM_HwXsortSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto vals = random_values(n, 5);
  for (auto _ : state) {
    HwXsortEngine hw({.cells = n, .interval_bits = 16});
    XsortAlgorithm algo(hw);
    benchmark::DoNotOptimize(algo.sort(vals));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HwXsortSort)->Arg(64)->Arg(256);

void BM_SoftXsortSort(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto vals = random_values(n, 5);
  for (auto _ : state) {
    SoftXsortEngine sw({.cells = n, .interval_bits = 16});
    XsortAlgorithm algo(sw);
    benchmark::DoNotOptimize(algo.sort(vals));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SoftXsortSort)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  fpgafu::bench::init(&argc, argv);
  print_per_op_table();
  print_sort_table();
  print_selection_table();
  print_tree_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
